//! The simulation kernel and the serial engine.
//!
//! [`Kernel`] owns component state and implements event delivery; it is
//! shared by the serial [`Engine`] and the per-rank workers of the parallel
//! engine. The serial engine is simply a kernel plus one event queue.

use crate::builder::SystemBuilder;
use crate::component::{CompState, EventSink, LinkEnd, SimCtx, Slot};
use crate::event::{
    ClockId, ComponentId, EventBufPool, EventClass, EventKind, ScheduledEvent, TieBreak,
};
use crate::queue::{AutoQueue, BinaryHeapQueue, IndexedQueue, SimQueue};
use crate::rng::component_rng;
use crate::snapshot::{self, ComponentSnap, Snapshot, SNAPSHOT_SCHEMA};
use crate::specialize::{BatchCtx, ForwardSpec, FusedGroup};
use crate::stats::{StatsRegistry, StatsSnapshot};
use crate::telemetry::live::{LiveMetrics, RankLive};
use crate::telemetry::{
    EngineProfile, Sampler, StatsSeries, TelemetrySpec, TelemetryState, Tracer,
};
use crate::time::SimTime;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// How long to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLimit {
    /// Process every event with `time <= t`, then stop at `t`.
    Until(SimTime),
    /// Run until no events remain. (A system with a free-running clock never
    /// exhausts; such components must suspend their clocks when idle.)
    Exhaust,
}

impl RunLimit {
    #[inline]
    pub fn bound(self) -> SimTime {
        match self {
            RunLimit::Until(t) => t,
            RunLimit::Exhaust => SimTime::MAX,
        }
    }
}

/// End-of-run summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Final simulated time (the limit, or the last processed event's time).
    pub end_time: SimTime,
    /// Message events delivered.
    pub events: u64,
    /// Clock ticks fired.
    pub clock_ticks: u64,
    /// Wall-clock run duration in seconds.
    pub wall_seconds: f64,
    /// Number of parallel ranks used (1 for the serial engine).
    pub ranks: u32,
    /// Conservative-sync epochs executed (0 for the serial engine).
    pub epochs: u64,
    /// Final statistics table.
    pub stats: StatsSnapshot,
    /// Self-profiling results; present only when telemetry profiling was
    /// requested (`None`/absent otherwise — the zero-overhead guarantee).
    #[serde(default)]
    pub profile: Option<EngineProfile>,
    /// Periodic stats samples; present only when a sampling interval was
    /// configured on a serial run.
    #[serde(default)]
    pub series: Option<StatsSeries>,
    /// Canonical FNV-1a hash of the final simulation state; present only
    /// when the run went through a checkpointing entry point
    /// ([`EngineOn::run_with_checkpoints`] or its parallel counterpart).
    #[serde(default)]
    pub final_state_hash: Option<String>,
    /// Pending-event queue backend the run used (`"heap"`, `"indexed"`, or
    /// `"heap->indexed"` when [`AutoQueue`] migrated mid-run). Absent in
    /// reports from older versions.
    #[serde(default)]
    pub queue_backend: Option<String>,
    /// Whether the build-time specialization pass (component fusion + chain
    /// flattening; see [`crate::specialize`]) ran on this build.
    #[serde(default)]
    pub specialized: bool,
}

impl SimReport {
    /// Delivered events (messages + clock ticks) per wall-clock second.
    ///
    /// Returns `0.0` when the wall-clock duration is zero (or garbage, e.g.
    /// negative or NaN from a deserialized report): a rate of `INFINITY`
    /// would serialize to JSON `null` and poison downstream aggregation.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds.is_finite() && self.wall_seconds > 0.0 {
            (self.events + self.clock_ticks) as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

pub(crate) struct ClockState {
    pub comp: ComponentId,
    pub period: SimTime,
    pub active: bool,
}

/// Component state container plus the delivery state machine.
pub(crate) struct Kernel {
    /// Global `ComponentId` → index into `slots`; `u32::MAX` marks
    /// components owned by other ranks. Four bytes per component per rank
    /// instead of a full (mostly `None`) `Option<Slot>`, which is what makes
    /// 10⁵–10⁶-component systems across tens of ranks feasible.
    pub(crate) slot_index: Vec<u32>,
    /// Densely packed slots for locally owned components only.
    pub slots: Vec<Slot>,
    pub stats: StatsRegistry,
    pub clocks: Vec<ClockState>,
    pub now: SimTime,
    pub events: u64,
    pub clock_ticks: u64,
    /// The builder's RNG seed, recorded for run manifests.
    pub seed: u64,
    /// Telemetry state; `None` (one pointer null-check on the hot path)
    /// unless the run was built with an enabled [`TelemetrySpec`].
    pub tel: Option<Box<TelemetryState>>,
    pub(crate) resume_buf: Vec<ClockId>,
    /// Fused component groups created by the specialization pass; `None`
    /// entries are groups out on loan to a delivery.
    pub(crate) groups: Vec<Option<Box<dyn FusedGroup>>>,
    /// Per-slot chain-forwarding specs (parallel to `slots`); empty when the
    /// specialization pass did not run.
    pub(crate) forward: Vec<Option<ForwardSpec>>,
    /// Whether the specialization pass ran on this kernel.
    pub specialized: bool,
    /// High-water mark of chain-folded delivery times: folded hops deliver
    /// ahead of `now` (legal because forwarders touch no shared state), so
    /// the batch loop folds this back into `now` at each step boundary.
    pub(crate) fold_hwm: SimTime,
}

impl Kernel {
    /// An empty kernel shell: no local slots yet, every id mapped non-local.
    fn empty(seed: u64, n_comps: usize) -> Kernel {
        Kernel {
            slot_index: vec![u32::MAX; n_comps],
            slots: Vec::new(),
            stats: StatsRegistry::new(),
            clocks: Vec::new(),
            now: SimTime::ZERO,
            events: 0,
            clock_ticks: 0,
            seed,
            tel: None,
            resume_buf: Vec::new(),
            groups: Vec::new(),
            forward: Vec::new(),
            specialized: false,
            fold_hwm: SimTime::ZERO,
        }
    }

    /// Build one kernel per rank in a single pass over the system: the full
    /// per-component link tables are computed once, then each boxed
    /// component *moves* into its owning rank's kernel. No placeholder
    /// components, no per-rank copies of the builder. Every kernel carries
    /// the full clock table (clocks are indexed by global `ClockId`); only
    /// the owning rank ever activates an entry.
    pub fn build_all(builder: SystemBuilder, ranks: &[u32], n_ranks: u32) -> Vec<Kernel> {
        let n = builder.comps.len();
        debug_assert_eq!(ranks.len(), n);
        // Per-component port link tables.
        let mut link_tables: Vec<Vec<Option<LinkEnd>>> = vec![Vec::new(); n];
        let mut set_end = |from: (ComponentId, crate::event::PortId),
                           to: (ComponentId, crate::event::PortId),
                           latency: SimTime| {
            let table = &mut link_tables[from.0 .0 as usize];
            let idx = from.1 .0 as usize;
            if table.len() <= idx {
                table.resize(idx + 1, None);
            }
            table[idx] = Some(LinkEnd {
                target: to.0,
                port: to.1,
                latency,
                rank: ranks[to.0 .0 as usize],
            });
        };
        for l in &builder.links {
            set_end(l.a, l.b, l.latency);
            set_end(l.b, l.a, l.latency);
        }

        let seed = builder.seed;
        let specialize = builder.specialize;
        let mut kernels: Vec<Kernel> = (0..n_ranks).map(|_| Kernel::empty(seed, n)).collect();
        for k in &mut kernels {
            k.clocks = builder
                .clocks
                .iter()
                .map(|c| ClockState {
                    comp: c.comp,
                    period: c.period,
                    active: false,
                })
                .collect();
        }
        for (i, (spec, table)) in builder.comps.into_iter().zip(link_tables).enumerate() {
            let k = &mut kernels[ranks[i] as usize];
            k.slot_index[i] = k.slots.len() as u32;
            k.slots.push(Slot {
                id: ComponentId(i as u32),
                name: spec.name,
                comp: CompState::Boxed(Some(spec.comp)),
                rng: component_rng(seed, i as u32),
                send_seq: 0,
                links: table,
                rank: ranks[i],
            });
        }
        if specialize {
            // Per-kernel, so fusion groups split at rank boundaries for free.
            for k in &mut kernels {
                crate::specialize::specialize_kernel(k);
            }
        }
        kernels
    }

    /// Build one kernel per rank from a [`LazySystem`], never materializing
    /// an eager component/link `Vec` for the whole graph: components are
    /// created one at a time straight into their owning rank's dense slot
    /// table, and links are streamed once, wiring both endpoints in place.
    /// Lazy systems have no clocks.
    pub fn build_all_lazy(
        sys: &dyn crate::builder::LazySystem,
        ranks: &[u32],
        n_ranks: u32,
    ) -> Vec<Kernel> {
        let n = sys.component_count() as usize;
        debug_assert_eq!(ranks.len(), n);
        let seed = sys.seed();
        let mut kernels: Vec<Kernel> = (0..n_ranks).map(|_| Kernel::empty(seed, n)).collect();
        for i in 0..n as u32 {
            let k = &mut kernels[ranks[i as usize] as usize];
            k.slot_index[i as usize] = k.slots.len() as u32;
            k.slots.push(Slot {
                id: ComponentId(i),
                name: sys.component_name(i),
                comp: CompState::Boxed(Some(sys.create(i))),
                rng: component_rng(seed, i),
                send_seq: 0,
                links: Vec::new(),
                rank: ranks[i as usize],
            });
        }
        sys.for_each_link(&mut |l: crate::builder::LazyLink| {
            assert!(
                l.latency.as_ps() > 0,
                "zero-latency links are not allowed (lookahead would vanish)"
            );
            assert!(l.a != l.b, "component {} linked a port to itself", l.a.0 .0);
            let mut set = |from: (ComponentId, crate::event::PortId),
                           to: (ComponentId, crate::event::PortId)| {
                let k = &mut kernels[ranks[from.0 .0 as usize] as usize];
                let sidx = k.slot_index[from.0 .0 as usize] as usize;
                let slot = &mut k.slots[sidx];
                let p = from.1 .0 as usize;
                if slot.links.len() <= p {
                    slot.links.resize(p + 1, None);
                }
                assert!(
                    slot.links[p].is_none(),
                    "port {p} of component `{}` is linked twice",
                    slot.name
                );
                slot.links[p] = Some(LinkEnd {
                    target: to.0,
                    port: to.1,
                    latency: l.latency,
                    rank: ranks[to.0 .0 as usize],
                });
            };
            set(l.a, l.b);
            set(l.b, l.a);
        });
        if sys.specialize() {
            for k in &mut kernels {
                crate::specialize::specialize_kernel(k);
            }
        }
        kernels
    }

    /// Attach per-run telemetry state built from `spec`. `names` is the full
    /// component-name table (all ranks); `parallel` selects rank-buffered
    /// tracing and disables sampling.
    pub fn attach_telemetry(
        &mut self,
        spec: &TelemetrySpec,
        names: Arc<Vec<String>>,
        parallel: bool,
    ) {
        self.tel = spec.make_state(names, parallel);
    }

    /// Tear down telemetry at end of run: flush the tracer, and return the
    /// profile and stats series (each `None` when not collected).
    pub fn finish_telemetry(&mut self) -> (Option<EngineProfile>, Option<StatsSeries>) {
        let Some(tel) = self.tel.take() else {
            return (None, None);
        };
        let tel = *tel;
        if let Some(tracer) = tel.tracer {
            tracer.finish();
        }
        let series = tel.sampler.map(|mut s| {
            s.finish(self.now.as_ps(), &self.stats);
            s.into_series()
        });
        let profile = tel.profiler.map(|p| p.into_profile(&tel.names));
        (profile, series)
    }

    pub(crate) fn is_local(&self, c: ComponentId) -> bool {
        self.slot_index
            .get(c.0 as usize)
            .is_some_and(|&k| k != u32::MAX)
    }

    /// Capture every local component's state, sorted by name (the canonical
    /// snapshot order, independent of id assignment and rank layout).
    pub(crate) fn capture_components(&self) -> Vec<ComponentSnap> {
        let mut snaps: Vec<ComponentSnap> = self
            .slots
            .iter()
            .map(|slot| {
                let comp: &dyn crate::component::Component = match &slot.comp {
                    CompState::Boxed(b) => b.as_deref().expect("capture during delivery"),
                    CompState::Fused { group, member } => self.groups[*group as usize]
                        .as_deref()
                        .expect("capture during delivery")
                        .member_ref(*member),
                };
                snapshot::component_snap(&slot.name, slot.rng.state(), slot.send_seq, comp)
            })
            .collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }

    /// Clock activity flags indexed by global `ClockId`. Only the owning
    /// rank's flag is ever true, so a parallel capture merges per-rank
    /// tables with a plain element-wise OR.
    pub(crate) fn capture_clock_flags(&self) -> Vec<bool> {
        self.clocks.iter().map(|c| c.active).collect()
    }

    /// Overwrite local component state (RNG stream, send-sequence cursor,
    /// [`Component::load_state`](crate::component::Component::load_state))
    /// from snapshot entries, matched by name. Must run *after* `setup_all`
    /// so setup-assigned wiring is live. Returns how many entries applied;
    /// callers check coverage (every snapshot entry must land on exactly one
    /// rank). Panics if a local component has no snapshot entry.
    pub(crate) fn restore_components(&mut self, comps: &[ComponentSnap]) -> usize {
        let by_name: HashMap<&str, &ComponentSnap> =
            comps.iter().map(|c| (c.name.as_str(), c)).collect();
        let mut applied = 0;
        let groups = &mut self.groups;
        for slot in self.slots.iter_mut() {
            let Some(cs) = by_name.get(slot.name.as_str()) else {
                panic!(
                    "snapshot has no state for component `{}`; \
                     does the rebuilt system match the snapshotted one?",
                    slot.name
                );
            };
            let rng_state: [u64; 4] =
                cs.rng.as_slice().try_into().unwrap_or_else(|_| {
                    panic!("malformed rng state for component `{}`", slot.name)
                });
            slot.rng = SmallRng::from_state(rng_state);
            slot.send_seq = cs.send_seq;
            match &mut slot.comp {
                CompState::Boxed(b) => b
                    .as_mut()
                    .expect("restore during delivery")
                    .load_state(&cs.state),
                CompState::Fused { group, member } => groups[*group as usize]
                    .as_mut()
                    .expect("restore during delivery")
                    .member_mut(*member)
                    .load_state(&cs.state),
            }
            applied += 1;
        }
        applied
    }

    /// Restore clock activity flags for locally owned clocks. (Non-local
    /// flags are never read, but keeping them false mirrors `start_clocks`.)
    pub(crate) fn restore_clocks(&mut self, flags: &[bool]) {
        assert_eq!(
            flags.len(),
            self.clocks.len(),
            "snapshot clock table does not match the rebuilt system"
        );
        let slot_index = &self.slot_index;
        for (clk, &f) in self.clocks.iter_mut().zip(flags) {
            if slot_index
                .get(clk.comp.0 as usize)
                .is_some_and(|&k| k != u32::MAX)
            {
                clk.active = f;
            }
        }
    }

    /// Schedule the first tick of every local clock.
    pub fn start_clocks(&mut self, sink: &mut dyn EventSink) {
        let slot_index = &self.slot_index;
        for (i, clk) in self.clocks.iter_mut().enumerate() {
            if slot_index
                .get(clk.comp.0 as usize)
                .is_some_and(|&k| k != u32::MAX)
            {
                clk.active = true;
                sink.push(clock_tick(clk, ClockId(i as u32), clk.period), u32::MAX);
            }
        }
    }

    /// Run `setup` on every local component (at time zero), then resolve
    /// chain-forwarding stat handles against the freshly registered stats.
    pub fn setup_all(&mut self, sink: &mut dyn EventSink) {
        let mut tel = self.tel.take();
        for k in 0..self.slots.len() {
            let id = self.slots[k].id;
            let tracer = tel.as_deref_mut().and_then(|t| t.tracer.as_mut());
            self.with_ctx(id, sink, tracer, |comp, ctx| comp.setup(ctx));
        }
        self.tel = tel;
        crate::specialize::resolve_forward_stats(self);
    }

    /// Run `finish` on every local component.
    pub fn finish_all(&mut self, sink: &mut dyn EventSink) {
        let mut tel = self.tel.take();
        for k in 0..self.slots.len() {
            let id = self.slots[k].id;
            let tracer = tel.as_deref_mut().and_then(|t| t.tracer.as_mut());
            self.with_ctx(id, sink, tracer, |comp, ctx| comp.finish(ctx));
        }
        self.tel = tel;
    }

    /// Deliver one scheduled event (message or clock tick) to its local
    /// target, advancing kernel time to the event time.
    ///
    /// The telemetry check is a single `Option` discriminant test: disabled
    /// runs go straight to the untouched fast path.
    #[inline]
    pub fn deliver(&mut self, ev: ScheduledEvent, sink: &mut dyn EventSink) {
        debug_assert!(ev.time >= self.now, "event in the past: {ev:?}");
        debug_assert!(self.is_local(ev.target), "event for non-local component");
        if self.tel.is_some() {
            return self.deliver_instrumented(ev, sink);
        }
        self.deliver_body(ev, sink, None);
    }

    /// Delivery with the telemetry check hoisted out: batched loops test
    /// `tel` once per batch and call this per event on the disabled path.
    #[inline]
    pub fn deliver_fast(&mut self, ev: ScheduledEvent, sink: &mut dyn EventSink) {
        debug_assert!(ev.time >= self.now, "event in the past: {ev:?}");
        debug_assert!(self.is_local(ev.target), "event for non-local component");
        debug_assert!(self.tel.is_none(), "fast path with telemetry attached");
        self.deliver_body(ev, sink, None);
    }

    /// Telemetry-enabled delivery: sample stat boundaries, emit the trace
    /// record, and time the handler around the shared delivery body.
    #[cold]
    fn deliver_instrumented(&mut self, ev: ScheduledEvent, sink: &mut dyn EventSink) {
        let mut tel = self.tel.take().expect("instrumented path without state");
        if let Some(s) = tel.sampler.as_mut() {
            s.observe(ev.time.as_ps(), &self.stats);
        }
        if let Some(tr) = tel.tracer.as_mut() {
            match &ev.kind {
                EventKind::Message { port, .. } => {
                    tr.deliver(ev.time.as_ps(), ev.tie.src.0, ev.target.0, port.0 as u32)
                }
                EventKind::ClockTick { cycle, .. } => {
                    tr.clock(ev.time.as_ps(), ev.target.0, *cycle)
                }
            }
        }
        let target = ev.target.0;
        let t0 = tel.profiler.is_some().then(std::time::Instant::now);
        self.deliver_body(ev, sink, tel.tracer.as_mut());
        if let (Some(p), Some(t0)) = (tel.profiler.as_mut(), t0) {
            p.record(target, t0.elapsed().as_nanos() as u64);
        }
        self.tel = Some(tel);
    }

    /// The delivery state machine shared by both paths.
    #[inline]
    fn deliver_body(
        &mut self,
        ev: ScheduledEvent,
        sink: &mut dyn EventSink,
        tracer: Option<&mut Tracer>,
    ) {
        self.now = ev.time;
        match ev.kind {
            EventKind::Message { port, payload } => {
                self.events += 1;
                self.with_ctx(ev.target, sink, tracer, |comp, ctx| {
                    comp.on_event(port, payload, ctx)
                });
            }
            EventKind::ClockTick { clock, cycle } => {
                self.clock_ticks += 1;
                let action = self.with_ctx(ev.target, sink, tracer, |comp, ctx| {
                    comp.on_clock(clock, cycle, ctx)
                });
                let clk = &mut self.clocks[clock.0 as usize];
                match action {
                    crate::component::ClockAction::Continue => {
                        sink.push(clock_tick(clk, clock, ev.time + clk.period), u32::MAX);
                    }
                    crate::component::ClockAction::Suspend => clk.active = false,
                }
            }
        }
    }

    /// Borrow-split helper: take the component out of its slot, build a
    /// context over the remaining kernel state, run `f`, put it back, then
    /// apply any clock-resume requests.
    fn with_ctx<R>(
        &mut self,
        id: ComponentId,
        sink: &mut dyn EventSink,
        tracer: Option<&mut Tracer>,
        f: impl FnOnce(&mut dyn crate::component::Component, &mut SimCtx<'_>) -> R,
    ) -> R {
        let idx = match self.slot_index.get(id.0 as usize) {
            Some(&k) if k != u32::MAX => k as usize,
            _ => panic!("component {id} is not local"),
        };
        // Take the component (or its whole fused group) out of the kernel so
        // the context can borrow the rest; put it back after the call.
        enum How {
            Boxed(Box<dyn crate::component::Component>),
            Fused {
                grp: Box<dyn FusedGroup>,
                gid: u32,
                member: u32,
            },
        }
        let mut how = match &mut self.slots[idx].comp {
            CompState::Boxed(b) => How::Boxed(b.take().expect("re-entrant component delivery")),
            CompState::Fused { group, member } => {
                let (gid, member) = (*group, *member);
                let grp = self.groups[gid as usize]
                    .take()
                    .expect("re-entrant fused-group delivery");
                How::Fused { grp, gid, member }
            }
        };
        let r = {
            let slot = &mut self.slots[idx];
            let mut ctx = SimCtx {
                now: self.now,
                me: id,
                me_rank: slot.rank,
                name: &slot.name,
                links: &slot.links,
                rng: &mut slot.rng,
                send_seq: &mut slot.send_seq,
                stats: &mut self.stats,
                sink: crate::component::CtxSink::Dyn(sink),
                clock_resumes: &mut self.resume_buf,
                tracer,
            };
            let comp: &mut dyn crate::component::Component = match &mut how {
                How::Boxed(b) => b.as_mut(),
                How::Fused { grp, member, .. } => grp.member_mut(*member),
            };
            f(comp, &mut ctx)
        };
        match how {
            How::Boxed(b) => self.slots[idx].comp = CompState::Boxed(Some(b)),
            How::Fused { grp, gid, .. } => self.groups[gid as usize] = Some(grp),
        }

        // Apply clock resumes outside the ctx borrow.
        while let Some(cid) = self.resume_buf.pop() {
            let clk = &mut self.clocks[cid.0 as usize];
            if !clk.active {
                clk.active = true;
                // First tick strictly after `now`, on the period grid.
                let next = (self.now / clk.period + 1) * clk.period.as_ps();
                sink.push(clock_tick(clk, cid, SimTime::ps(next)), u32::MAX);
            }
        }
        r
    }
}

pub(crate) fn clock_tick(clk: &ClockState, id: ClockId, time: SimTime) -> ScheduledEvent {
    ScheduledEvent {
        time,
        class: EventClass::Clock,
        tie: TieBreak {
            src: clk.comp,
            seq: id.0 as u64,
        },
        target: clk.comp,
        kind: EventKind::ClockTick {
            clock: id,
            cycle: time / clk.period,
        },
    }
}

impl EventSink for IndexedQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, _target_rank: u32) {
        IndexedQueue::push(self, ev);
    }
}

impl EventSink for BinaryHeapQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, _target_rank: u32) {
        BinaryHeapQueue::push(self, ev);
    }
}

impl EventSink for AutoQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, _target_rank: u32) {
        AutoQueue::push(self, ev);
    }
}

/// The serial discrete-event engine, generic over the pending-event queue.
/// Use the [`Engine`] alias unless differentially testing queues.
pub struct EngineOn<Q: SimQueue + EventSink> {
    kernel: Kernel,
    queue: Q,
    started: bool,
    spec: TelemetrySpec,
    /// Recycles the same-time delivery batch buffer across `step` calls.
    pool: EventBufPool,
    /// Live-metrics registry plus this engine's rank-0 slice; `None` (the
    /// default) costs the batch loop one discriminant check, like `tel`.
    live: Option<(Arc<LiveMetrics>, Arc<RankLive>)>,
    live_label: String,
}

/// The serial engine over the default (indexed) queue.
pub type Engine = EngineOn<IndexedQueue>;

/// The serial engine over the reference heap queue, for comparisons.
pub type HeapEngine = EngineOn<BinaryHeapQueue>;

/// The serial engine over the depth-adaptive queue: starts on the heap and
/// migrates to the indexed queue if the pending set grows past the measured
/// crossover. The right default when the workload's queue depth is unknown.
pub type AutoEngine = EngineOn<AutoQueue>;

impl<Q: SimQueue + EventSink> EngineOn<Q> {
    /// Build a serial engine from a system description.
    pub fn new(builder: SystemBuilder) -> EngineOn<Q> {
        Self::with_telemetry(builder, TelemetrySpec::disabled())
    }

    /// Build a serial engine with telemetry configured by `spec`. A disabled
    /// spec behaves exactly like [`EngineOn::new`].
    pub fn with_telemetry(builder: SystemBuilder, spec: TelemetrySpec) -> EngineOn<Q> {
        let ranks = vec![0u32; builder.comps.len()];
        let names: Arc<Vec<String>> = if spec.is_enabled() {
            Arc::new(builder.comps.iter().map(|c| c.name.clone()).collect())
        } else {
            Arc::new(Vec::new())
        };
        let mut kernel = Kernel::build_all(builder, &ranks, 1)
            .pop()
            .expect("serial build yields one kernel");
        kernel.attach_telemetry(&spec, names, false);
        EngineOn {
            kernel,
            queue: Q::default(),
            started: false,
            spec,
            pool: EventBufPool::new(),
            live: None,
            live_label: String::new(),
        }
    }

    /// Publish in-flight progress into `metrics` (serial runs report as
    /// rank 0). `label` names the run segment in `/status`. Detached by
    /// default; attaching does not change delivery order or results.
    pub fn attach_live_metrics(&mut self, metrics: &Arc<LiveMetrics>, label: &str) {
        self.live = Some((Arc::clone(metrics), metrics.rank(0)));
        self.live_label = label.to_string();
    }

    fn start(&mut self) {
        if !self.started {
            self.started = true;
            self.kernel.setup_all(&mut self.queue);
            self.kernel.start_clocks(&mut self.queue);
        }
    }

    /// Arm the live registry for this run segment (no-op when detached).
    fn live_begin(&self, limit: RunLimit) {
        if let Some((metrics, _)) = &self.live {
            let bound = match limit {
                RunLimit::Until(t) => Some(t),
                RunLimit::Exhaust => None,
            };
            metrics.begin_run(&self.live_label, bound);
        }
    }

    /// Publish final sim-time and stand the watchdog down (no-op when
    /// detached).
    fn live_finish(&self) {
        if let Some((metrics, rank)) = &self.live {
            rank.batch(self.kernel.now, 0, self.queue.len());
            metrics.note_finished();
        }
    }

    /// Advance the simulation, processing every event with time `<= limit`
    /// (or all events, for `Exhaust`). May be called repeatedly with
    /// increasing limits.
    ///
    /// Delivery is batched: each iteration drains the entire run of events
    /// at the next time instant into a pooled buffer, then delivers them
    /// back to back. The queue is touched once per instant instead of once
    /// per event, and the telemetry discriminant is tested once per batch.
    /// Handlers that push *new* same-time events with earlier keys (lower
    /// source id) are interleaved correctly via `pop_if_key_before`, an O(1)
    /// check per batch element.
    pub fn step(&mut self, limit: RunLimit) {
        self.start();
        self.step_bounded(limit.bound());
        if let RunLimit::Until(t) = limit {
            self.kernel.now = self.kernel.now.max(t);
        }
    }

    /// Deliver every event with time `<= bound`, *without* the final
    /// clamp of `now` to the bound. Intermediate checkpoint legs use this
    /// directly: a capture must see `now` at the last delivered event, the
    /// same value an uninterrupted run would have carried through.
    fn step_bounded(&mut self, bound: SimTime) {
        let mut batch = self.pool.get();
        loop {
            let n = self.queue.pop_time_run(bound, &mut batch);
            if n == 0 {
                break;
            }
            if self.kernel.tel.is_some() {
                // Instrumented runs keep the generic path (fusion and folding
                // bypassed) so traces stay per member and byte-identical.
                self.deliver_batch_instrumented(&mut batch);
            } else if self.kernel.specialized {
                self.deliver_batch_specialized(&mut batch, bound);
            } else {
                for ev in batch.drain(..) {
                    while let Some(s) = self.queue.pop_if_key_before(ev.key()) {
                        self.kernel.deliver_fast(s, &mut self.queue);
                    }
                    self.kernel.deliver_fast(ev, &mut self.queue);
                }
            }
            if let Some((_, rank)) = &self.live {
                rank.batch(self.kernel.now, n as u64, self.queue.len());
            }
        }
        // Chain-folded hops may have delivered past the last batch instant
        // (never past `bound`); an unfused run's `now` would sit on the last
        // of them.
        self.kernel.now = self.kernel.now.max(self.kernel.fold_hwm);
        self.pool.put(batch);
    }

    /// Batch delivery on a specialized kernel: runs of events targeting the
    /// same fused group go through the group's monomorphized loop (one
    /// virtual call per run), chain-forwarder targets fold inline, and
    /// everything else takes the generic per-event path. Equivalent to the
    /// generic loop event for event — stragglers included.
    fn deliver_batch_specialized(&mut self, batch: &mut Vec<ScheduledEvent>, bound: SimTime) {
        // All batch elements share one time instant, and that instant was
        // fully drained before delivery began — so a straggler can only
        // exist after some handler pushes *at* the instant. Until then every
        // straggler peek is provably `None` and skipped. Fused deliveries
        // track pushes precisely through the `CtxSink::Instant` sentinel;
        // generic and folded deliveries push untracked, so they set the flag
        // conservatively.
        let mut pushed_at_instant = false;
        let mut i = 0;
        while i < batch.len() {
            if pushed_at_instant {
                while let Some(s) = self.queue.pop_if_key_before(batch[i].key()) {
                    self.deliver_one_specialized(s, bound);
                }
            }
            let fused = match self.kernel.slot_index.get(batch[i].target.0 as usize) {
                Some(&k) if k != u32::MAX => match self.kernel.slots[k as usize].comp {
                    CompState::Fused { group, member }
                        if matches!(batch[i].kind, EventKind::Message { .. }) =>
                    {
                        Some((k as usize, group, member))
                    }
                    _ => None,
                },
                _ => None,
            };
            let Some((si, gid, member)) = fused else {
                let ev = crate::specialize::take_event(&mut batch[i]);
                self.deliver_one_specialized(ev, bound);
                pushed_at_instant = true;
                i += 1;
                continue;
            };
            self.kernel.now = batch[i].time;
            let mut grp = self.kernel.groups[gid as usize]
                .take()
                .expect("re-entrant fused-group delivery");
            // Does the run extend past this event? A lone fused event — the
            // shallow-queue regime, e.g. a ring token — takes the flat
            // single-delivery entry, whose cost matches a generic boxed
            // delivery; real runs amortize the batch context instead.
            let run = batch.get(i + 1).is_some_and(|nx| {
                matches!(nx.kind, EventKind::Message { .. })
                    && matches!(
                        self.kernel.slot_index.get(nx.target.0 as usize),
                        Some(&k) if k != u32::MAX && matches!(
                            self.kernel.slots[k as usize].comp,
                            CompState::Fused { group, .. } if group == gid
                        )
                    )
            });
            if !run {
                let kind = crate::specialize::take_kind(&mut batch[i]);
                let now = self.kernel.now;
                let k = &mut self.kernel;
                grp.deliver_one(
                    member,
                    now,
                    kind,
                    crate::specialize::OneCtx {
                        slot: &mut k.slots[si],
                        stats: &mut k.stats,
                        clock_resumes: &mut k.resume_buf,
                        sink: crate::component::CtxSink::Instant {
                            queue: self.queue.sink_ref(),
                            now,
                            pushed_at_now: &mut pushed_at_instant,
                        },
                    },
                );
                k.events += 1;
                k.groups[gid as usize] = Some(grp);
                if !self.kernel.resume_buf.is_empty() {
                    self.apply_clock_resumes();
                }
                i += 1;
                continue;
            }
            let mut ctx = BatchCtx {
                slot_index: &self.kernel.slot_index,
                slots: &mut self.kernel.slots,
                stats: &mut self.kernel.stats,
                clocks: &mut self.kernel.clocks,
                resume_buf: &mut self.kernel.resume_buf,
                now: self.kernel.now,
                events: 0,
                queue: self.queue.sink_ref(),
                pushed_at_now: &mut pushed_at_instant,
                group_id: gid,
                pending: None,
            };
            let consumed = grp.deliver_batch(batch, i, si as u32, member, &mut ctx);
            let (events, pending) = (ctx.events, ctx.pending.take());
            drop(ctx);
            self.kernel.events += events;
            self.kernel.groups[gid as usize] = Some(grp);
            i += consumed;
            if let Some(s) = pending {
                // A straggler stopped the group loop; it precedes batch[i].
                self.deliver_one_specialized(s, bound);
            }
        }
        batch.clear();
    }

    /// Drain clock-resume requests queued by a fused single delivery;
    /// mirrors the drain at the tail of `Kernel::with_ctx`.
    #[cold]
    fn apply_clock_resumes(&mut self) {
        while let Some(cid) = self.kernel.resume_buf.pop() {
            let clk = &mut self.kernel.clocks[cid.0 as usize];
            if !clk.active {
                clk.active = true;
                let next = (self.kernel.now / clk.period + 1) * clk.period.as_ps();
                SimQueue::push(&mut self.queue, clock_tick(clk, cid, SimTime::ps(next)));
            }
        }
    }

    /// Single-event delivery on the specialized path: chain-forwarder
    /// targets fold, everything else (including fused members hit as
    /// stragglers) goes through the generic kernel delivery.
    fn deliver_one_specialized(&mut self, ev: ScheduledEvent, bound: SimTime) {
        if let EventKind::Message { port, .. } = ev.kind {
            if let Some(&k) = self.kernel.slot_index.get(ev.target.0 as usize) {
                if k != u32::MAX {
                    if let Some(spec) = self.kernel.forward[k as usize] {
                        assert_eq!(
                            port, spec.in_port,
                            "chain-forward component `{}` received an event on a port \
                             other than its declared in-port — the chain_forward \
                             contract is violated",
                            self.kernel.slots[k as usize].name
                        );
                        return self.fold_chain(ev, spec, bound);
                    }
                }
            }
        }
        self.kernel.deliver_fast(ev, &mut self.queue);
    }

    /// Deliver an event to a chain forwarder by performing the forwarder's
    /// entire contracted behavior inline — count, re-stamp with the
    /// forwarder's send sequence, add the link latency — and keep walking
    /// while the next hop is also a local forwarder inside this step's
    /// bound. One queue push replaces N round-trips. Hops that would land
    /// past `bound` (or past the cycle cap) queue the exact intermediate
    /// event an unfused run would have pending, so step-boundary queue
    /// state, checkpoints, and hashes agree.
    fn fold_chain(&mut self, mut ev: ScheduledEvent, mut spec: ForwardSpec, bound: SimTime) {
        /// Walk cap: bounds folding on forwarder-only cycles (the head of
        /// any real chain breaks the walk; this is a safety net).
        const MAX_FOLD_HOPS: u32 = 64;
        let mut hops = 0u32;
        loop {
            let k = self.kernel.slot_index[ev.target.0 as usize] as usize;
            let slot = &mut self.kernel.slots[k];
            self.kernel.events += 1;
            self.kernel.fold_hwm = self.kernel.fold_hwm.max(ev.time);
            if let Some(sid) = spec.stat {
                self.kernel.stats.add(sid, 1);
            }
            let seq = slot.send_seq;
            slot.send_seq += 1;
            let EventKind::Message { payload, .. } = ev.kind else {
                unreachable!("forwarders only receive messages");
            };
            ev = ScheduledEvent {
                time: ev.time + spec.out.latency,
                class: EventClass::Message,
                tie: TieBreak { src: slot.id, seq },
                target: spec.out.target,
                kind: EventKind::Message {
                    port: spec.out.port,
                    payload,
                },
            };
            hops += 1;
            if hops >= MAX_FOLD_HOPS || ev.time > bound {
                break;
            }
            let next = match self.kernel.slot_index.get(ev.target.0 as usize) {
                Some(&k) if k != u32::MAX => self.kernel.forward[k as usize],
                _ => None,
            };
            match next {
                // Only keep folding when the hop arrives on the next
                // forwarder's declared in-port; anything else queues the
                // event (and the in-port assert catches contract breaks at
                // delivery).
                Some(ns) if ns.in_port == spec.out.port => spec = ns,
                _ => break,
            }
        }
        SimQueue::push(&mut self.queue, ev);
    }

    /// Telemetry-on flavor of the batch loop: per-event instrumented
    /// delivery plus per-batch profiler bookkeeping.
    #[cold]
    fn deliver_batch_instrumented(&mut self, batch: &mut Vec<ScheduledEvent>) {
        let n = batch.len() as u64;
        for ev in batch.drain(..) {
            while let Some(s) = self.queue.pop_if_key_before(ev.key()) {
                self.kernel.deliver(s, &mut self.queue);
            }
            self.kernel.deliver(ev, &mut self.queue);
        }
        if let Some(p) = self
            .kernel
            .tel
            .as_deref_mut()
            .and_then(|t| t.profiler.as_mut())
        {
            p.note_batch(n);
            p.note_depth(self.queue.len() as u64);
        }
    }

    /// Capture a complete, sealed [`Snapshot`] of the engine at the current
    /// instant. Non-destructive: every drained event goes straight back into
    /// the queue and the run can continue. Panics if the queue holds a
    /// payload type with no [registered codec](crate::snapshot::register_payload).
    ///
    /// `origin` is an opaque rebuild recipe echoed into the snapshot for the
    /// CLI `restore` command; it does not affect the state hash.
    pub fn checkpoint(&mut self, origin: Option<&Value>) -> Snapshot {
        self.start();
        // Flush buffered trace records so the on-disk prefix covers
        // everything up to this instant — a restored run's trace appended to
        // that prefix reproduces the uninterrupted trace exactly.
        if let Some(tr) = self
            .kernel
            .tel
            .as_deref_mut()
            .and_then(|t| t.tracer.as_mut())
        {
            tr.flush();
        }
        let mut queue_snaps = Vec::with_capacity(self.queue.len());
        let mut drained = Vec::with_capacity(self.queue.len());
        while let Some(ev) = self.queue.pop() {
            let (snap, ev) = snapshot::encode_event(ev);
            queue_snaps.push(snap);
            drained.push(ev);
        }
        for ev in drained {
            SimQueue::push(&mut self.queue, ev);
        }
        let sampler = self
            .kernel
            .tel
            .as_deref()
            .and_then(|t| t.sampler.as_ref())
            .map(|s| s.save());
        let mut snap = Snapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            time_ps: self.kernel.now.as_ps(),
            seed: self.kernel.seed,
            events: self.kernel.events,
            clock_ticks: self.kernel.clock_ticks,
            components: self.kernel.capture_components(),
            clocks: self.kernel.capture_clock_flags(),
            queue: queue_snaps,
            stats: self.kernel.stats.checkpoint_stats(),
            sampler,
            origin: origin.cloned(),
            state_hash: String::new(),
        };
        snap.seal();
        snap
    }

    /// Rebuild an engine from `builder` and overwrite its state from a
    /// snapshot of the *same* system. `setup` runs first (registering stats
    /// and payload codecs), then the fresh initial events are discarded —
    /// each boxed payload dropping exactly once — and replaced by the
    /// snapshot's queue. Running the result to the original limit produces
    /// a report bit-identical to the uninterrupted run's.
    pub fn restore(builder: SystemBuilder, spec: TelemetrySpec, snap: &Snapshot) -> EngineOn<Q> {
        let mut eng = Self::with_telemetry(builder, spec);
        eng.start();
        while eng.queue.pop().is_some() {}
        let applied = eng.kernel.restore_components(&snap.components);
        assert_eq!(
            applied,
            snap.components.len(),
            "snapshot component names do not match the rebuilt system"
        );
        eng.kernel.restore_clocks(&snap.clocks);
        let stats_applied = eng.kernel.stats.restore_values(&snap.stats);
        assert_eq!(
            stats_applied,
            snap.stats.len(),
            "snapshot statistics do not match the rebuilt system"
        );
        eng.kernel.now = SimTime::ps(snap.time_ps);
        eng.kernel.events = snap.events;
        eng.kernel.clock_ticks = snap.clock_ticks;
        if let Some(s) = &snap.sampler {
            if let Some(tel) = eng.kernel.tel.as_deref_mut() {
                if tel.sampler.is_some() {
                    tel.sampler = Some(Sampler::restore(s));
                }
            }
        }
        for es in &snap.queue {
            SimQueue::push(&mut eng.queue, snapshot::decode_event(es));
        }
        eng
    }

    /// Run like [`run`](Self::run), capturing a sealed snapshot at every
    /// `every`-aligned boundary of simulated time (each capture happens
    /// after the last event at or before the boundary, so it matches the
    /// state an uninterrupted run carries through that instant). `sink`
    /// receives each intermediate snapshot; the report additionally carries
    /// the sealed hash of the *final* state, which requires payload codecs
    /// for anything still queued at the end.
    pub fn run_with_checkpoints(
        mut self,
        limit: RunLimit,
        every: Option<SimTime>,
        origin: Option<&Value>,
        sink: &mut dyn FnMut(Snapshot),
    ) -> SimReport {
        let t0 = std::time::Instant::now();
        self.start();
        self.live_begin(limit);
        let bound = limit.bound();
        if let Some(every) = every {
            assert!(every.as_ps() > 0, "checkpoint interval must be positive");
            while let Some(next_t) = self.queue.next_time() {
                if next_t > bound {
                    break;
                }
                // The earliest pending event's boundary; strictly past the
                // previous target, so every iteration makes progress.
                let target = SimTime::ps(next_t.as_ps().div_ceil(every.as_ps()) * every.as_ps());
                if target >= bound {
                    break;
                }
                self.step_bounded(target);
                sink(self.checkpoint(origin));
            }
        }
        self.step(limit);
        self.live_finish();
        let final_state_hash = Some(self.checkpoint(origin).state_hash);
        self.kernel.finish_all(&mut self.queue);
        let (profile, series) = self.kernel.finish_telemetry();
        let report = SimReport {
            end_time: self.kernel.now,
            events: self.kernel.events,
            clock_ticks: self.kernel.clock_ticks,
            wall_seconds: t0.elapsed().as_secs_f64(),
            ranks: 1,
            epochs: 0,
            stats: self.kernel.stats.snapshot(),
            profile,
            series,
            final_state_hash,
            queue_backend: Some(self.queue.backend_name().to_string()),
            specialized: self.kernel.specialized,
        };
        self.spec.collect_run(
            self.kernel.seed,
            report.events,
            report.clock_ticks,
            report.wall_seconds,
            report.profile.as_ref(),
            report.series.as_ref(),
        );
        report
    }

    /// Deliver every event at or before `at`, capture the sealed state, and
    /// discard the engine without finalizing components. This is the sweep
    /// engine's shared-prefix entry point: the returned snapshot restores N
    /// times into branches that diverge only after `at`. The capture uses
    /// the same un-clamped `now` semantics as an intermediate capture from
    /// [`EngineOn::run_with_checkpoints`], so restored branches stay
    /// bit-identical to uninterrupted runs.
    pub fn run_to_snapshot(mut self, at: SimTime, origin: Option<&Value>) -> Snapshot {
        self.start();
        self.step_bounded(at);
        self.checkpoint(origin)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Pending event count (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run to the limit, finalize components, and report.
    pub fn run(mut self, limit: RunLimit) -> SimReport {
        let t0 = std::time::Instant::now();
        self.start();
        self.live_begin(limit);
        self.step(limit);
        self.live_finish();
        self.kernel.finish_all(&mut self.queue);
        let (profile, series) = self.kernel.finish_telemetry();
        let report = SimReport {
            end_time: self.kernel.now,
            events: self.kernel.events,
            clock_ticks: self.kernel.clock_ticks,
            wall_seconds: t0.elapsed().as_secs_f64(),
            ranks: 1,
            epochs: 0,
            stats: self.kernel.stats.snapshot(),
            profile,
            series,
            final_state_hash: None,
            queue_backend: Some(self.queue.backend_name().to_string()),
            specialized: self.kernel.specialized,
        };
        self.spec.collect_run(
            self.kernel.seed,
            report.events,
            report.clock_ticks,
            report.wall_seconds,
            report.profile.as_ref(),
            report.series.as_ref(),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ClockAction, Component, SimCtx};
    use crate::event::{downcast, PayloadSlot, PortId, SELF_PORT};
    use crate::stats::StatId;
    use crate::time::Frequency;

    #[derive(Debug)]
    struct Ball(u32);

    /// Bounces a counter back and forth `max` times.
    struct PingPong {
        max: u32,
        seen: Option<StatId>,
        start: bool,
    }
    impl PingPong {
        const PORT: PortId = PortId(0);
    }
    impl Component for PingPong {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.seen = Some(ctx.stat_counter("bounces"));
            if self.start {
                ctx.send(Self::PORT, Ball(0));
            }
        }
        fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            assert_eq!(port, Self::PORT);
            let ball = downcast::<Ball>(payload);
            ctx.add_stat(self.seen.unwrap(), 1);
            if ball.0 < self.max {
                ctx.send(Self::PORT, Ball(ball.0 + 1));
            }
        }
    }

    #[test]
    fn ping_pong_exhaust() {
        let mut b = SystemBuilder::new();
        let a = b.add(
            "ping",
            PingPong {
                max: 9,
                seen: None,
                start: true,
            },
        );
        let c = b.add(
            "pong",
            PingPong {
                max: 9,
                seen: None,
                start: false,
            },
        );
        b.link((a, PingPong::PORT), (c, PingPong::PORT), SimTime::ns(5));
        let report = Engine::new(b).run(RunLimit::Exhaust);
        // Balls 0..=9 delivered: 10 deliveries alternating pong/ping.
        assert_eq!(report.events, 10);
        assert_eq!(report.stats.counter("pong", "bounces"), 5);
        assert_eq!(report.stats.counter("ping", "bounces"), 5);
        // Last delivery at 10 * 5ns.
        assert_eq!(report.end_time, SimTime::ns(50));
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut b = SystemBuilder::new();
        let a = b.add(
            "ping",
            PingPong {
                max: 1000,
                seen: None,
                start: true,
            },
        );
        let c = b.add(
            "pong",
            PingPong {
                max: 1000,
                seen: None,
                start: false,
            },
        );
        b.link((a, PingPong::PORT), (c, PingPong::PORT), SimTime::ns(10));
        let report = Engine::new(b).run(RunLimit::Until(SimTime::ns(100)));
        assert_eq!(report.end_time, SimTime::ns(100));
        // Deliveries at 10,20,...,100 ns inclusive.
        assert_eq!(report.events, 10);
    }

    /// Counts its own clock ticks; suspends after 5 and resumes via a
    /// delayed self event.
    struct Ticker {
        ticks: u64,
        resumed: bool,
        clock: crate::event::ClockId,
        stat: Option<StatId>,
    }
    #[derive(Debug)]
    struct WakeUp;
    impl Component for Ticker {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.stat = Some(ctx.stat_counter("ticks"));
        }
        fn on_event(&mut self, port: PortId, _p: PayloadSlot, ctx: &mut SimCtx<'_>) {
            assert_eq!(port, SELF_PORT);
            self.resumed = true;
            ctx.resume_clock(self.clock);
        }
        fn on_clock(
            &mut self,
            _c: crate::event::ClockId,
            _cycle: u64,
            ctx: &mut SimCtx<'_>,
        ) -> ClockAction {
            self.ticks += 1;
            ctx.add_stat(self.stat.unwrap(), 1);
            if self.ticks == 5 && !self.resumed {
                ctx.schedule_self(SimTime::ns(100), WakeUp);
                ClockAction::Suspend
            } else if self.ticks >= 8 {
                ClockAction::Suspend
            } else {
                ClockAction::Continue
            }
        }
    }

    #[test]
    fn clock_suspend_resume() {
        let mut b = SystemBuilder::new();
        let t = b.add(
            "ticker",
            Ticker {
                ticks: 0,
                resumed: false,
                clock: crate::event::ClockId(0),
                stat: None,
            },
        );
        let clk = b.clock(t, Frequency::ghz(1.0));
        assert_eq!(clk.0, 0);
        let report = Engine::new(b).run(RunLimit::Exhaust);
        // 5 ticks at 1..=5 ns, wake at ~105 ns, 3 more ticks, suspend at 8.
        assert_eq!(report.stats.counter("ticker", "ticks"), 8);
        assert_eq!(report.events, 1); // the WakeUp self event
        assert_eq!(report.clock_ticks, 8);
        // Resume aligns to the period grid after 105 ns: ticks at 106,107,108.
        assert_eq!(report.end_time, SimTime::ns(108));
    }

    #[test]
    fn clock_cycle_numbers_match_time() {
        struct CycleCheck;
        impl Component for CycleCheck {
            fn on_event(&mut self, _p: PortId, _e: PayloadSlot, _c: &mut SimCtx<'_>) {}
            fn on_clock(
                &mut self,
                _c: crate::event::ClockId,
                cycle: u64,
                ctx: &mut SimCtx<'_>,
            ) -> ClockAction {
                assert_eq!(ctx.now().as_ps() / 500, cycle);
                if cycle < 10 {
                    ClockAction::Continue
                } else {
                    ClockAction::Suspend
                }
            }
        }
        let mut b = SystemBuilder::new();
        let c = b.add("cc", CycleCheck);
        b.clock(c, Frequency::ghz(2.0)); // 500 ps period
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert_eq!(report.clock_ticks, 10);
    }

    #[test]
    fn report_events_per_sec_finite() {
        let mut b = SystemBuilder::new();
        let a = b.add(
            "ping",
            PingPong {
                max: 100,
                seen: None,
                start: true,
            },
        );
        let c = b.add(
            "pong",
            PingPong {
                max: 100,
                seen: None,
                start: false,
            },
        );
        b.link((a, PingPong::PORT), (c, PingPong::PORT), SimTime::ns(1));
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert!(report.events_per_sec() > 0.0);
        assert!(report.events_per_sec().is_finite());
    }

    #[derive(Debug, Serialize, Deserialize)]
    struct SnapBall(u32);

    /// PingPong with a payload codec and evolving state, for checkpoint
    /// round-trip tests.
    struct SnapPong {
        max: u32,
        bounced: u32,
        seen: Option<StatId>,
        start: bool,
    }
    impl Component for SnapPong {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            crate::snapshot::register_payload::<SnapBall>("engine.test-ball");
            self.seen = Some(ctx.stat_counter("bounces"));
            if self.start {
                ctx.send(PingPong::PORT, SnapBall(0));
            }
        }
        fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            let ball = downcast::<SnapBall>(payload);
            self.bounced += 1;
            ctx.add_stat(self.seen.unwrap(), 1);
            if ball.0 < self.max {
                ctx.send(PingPong::PORT, SnapBall(ball.0 + 1));
            }
        }
        fn save_state(&self) -> serde_json::Value {
            SnapPongState {
                bounced: self.bounced,
            }
            .to_value()
        }
        fn load_state(&mut self, state: &serde_json::Value) {
            self.bounced = SnapPongState::from_value(state).unwrap().bounced;
        }
    }

    #[derive(Serialize, Deserialize)]
    struct SnapPongState {
        bounced: u32,
    }

    fn snap_system() -> SystemBuilder {
        let mut b = SystemBuilder::new();
        let a = b.add(
            "ping",
            SnapPong {
                max: 9,
                bounced: 0,
                seen: None,
                start: true,
            },
        );
        let c = b.add(
            "pong",
            SnapPong {
                max: 9,
                bounced: 0,
                seen: None,
                start: false,
            },
        );
        b.link((a, PingPong::PORT), (c, PingPong::PORT), SimTime::ns(5));
        b
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let plain = Engine::new(snap_system()).run_with_checkpoints(
            RunLimit::Exhaust,
            None,
            None,
            &mut |_| {},
        );

        let mut snaps = Vec::new();
        let chk = Engine::new(snap_system()).run_with_checkpoints(
            RunLimit::Exhaust,
            Some(SimTime::ns(12)),
            None,
            &mut |s| snaps.push(s),
        );
        // Checkpointing must not perturb the run itself.
        assert_eq!(chk.end_time, plain.end_time);
        assert_eq!(chk.final_state_hash, plain.final_state_hash);
        assert!(!snaps.is_empty(), "expected intermediate checkpoints");

        // Identical runs agree on every checkpoint hash (hash stability).
        let mut again = Vec::new();
        Engine::new(snap_system()).run_with_checkpoints(
            RunLimit::Exhaust,
            Some(SimTime::ns(12)),
            None,
            &mut |s| again.push(s),
        );
        let hashes: Vec<&str> = snaps.iter().map(|s| s.state_hash.as_str()).collect();
        let hashes2: Vec<&str> = again.iter().map(|s| s.state_hash.as_str()).collect();
        assert_eq!(hashes, hashes2);

        // Restore from every checkpoint; each finishes bit-identically.
        for snap in &snaps {
            let restored = Engine::restore(
                snap_system(),
                crate::telemetry::TelemetrySpec::disabled(),
                snap,
            )
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
            assert_eq!(restored.end_time, plain.end_time);
            assert_eq!(restored.events, plain.events);
            assert_eq!(restored.clock_ticks, plain.clock_ticks);
            assert_eq!(restored.final_state_hash, plain.final_state_hash);
            assert_eq!(
                serde_json::to_string(&restored.stats).unwrap(),
                serde_json::to_string(&plain.stats).unwrap()
            );
        }

        // A snapshot survives its own JSON round trip.
        let text = snaps[0].to_json_pretty();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back.state_hash, snaps[0].state_hash);
        let restored = Engine::restore(
            snap_system(),
            crate::telemetry::TelemetrySpec::disabled(),
            &back,
        )
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(restored.final_state_hash, plain.final_state_hash);
    }

    #[test]
    fn checkpoints_do_not_disturb_until_runs() {
        // `Until` clamps `now` at the end; intermediate captures must not.
        let plain = Engine::new(snap_system()).run(RunLimit::Until(SimTime::ns(31)));
        let mut snaps = Vec::new();
        let chk = Engine::new(snap_system()).run_with_checkpoints(
            RunLimit::Until(SimTime::ns(31)),
            Some(SimTime::ns(7)),
            None,
            &mut |s| snaps.push(s),
        );
        assert_eq!(chk.end_time, plain.end_time);
        assert_eq!(chk.events, plain.events);
        for s in &snaps {
            // Captures sit at delivered-event instants, never at the bound.
            assert!(s.time_ps < SimTime::ns(31).as_ps());
            assert_eq!(s.time_ps % SimTime::ns(5).as_ps(), 0);
        }
        let restored = Engine::restore(
            snap_system(),
            crate::telemetry::TelemetrySpec::disabled(),
            snaps.last().unwrap(),
        )
        .run_with_checkpoints(RunLimit::Until(SimTime::ns(31)), None, None, &mut |_| {});
        assert_eq!(restored.end_time, plain.end_time);
        assert_eq!(restored.events, plain.events);
        assert_eq!(restored.final_state_hash, chk.final_state_hash);
    }

    #[test]
    fn report_events_per_sec_zero_wall_time() {
        let mut report = Engine::new(SystemBuilder::new()).run(RunLimit::Exhaust);
        report.events = 1000;
        report.clock_ticks = 500;
        // Zero, negative, and NaN durations must all yield 0.0, never INF
        // (INFINITY serializes to JSON null and breaks report consumers).
        for bad in [0.0, -1.0, f64::NAN] {
            report.wall_seconds = bad;
            assert_eq!(report.events_per_sec(), 0.0);
        }
        report.wall_seconds = 0.5;
        assert_eq!(report.events_per_sec(), 3000.0);
    }
}
