//! Deterministic random-number streams.
//!
//! Every component gets its own RNG stream derived from
//! `(global_seed, component_id)` through SplitMix64, so simulations are
//! reproducible bit-for-bit regardless of execution order or rank placement —
//! a prerequisite for the serial ≡ parallel determinism guarantee.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — a high-quality 64-bit mixer used to derive independent
/// seeds from a (seed, stream) pair.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a 64-bit sub-seed for `stream` from `global_seed`.
pub fn derive_seed(global_seed: u64, stream: u64) -> u64 {
    let mut s = global_seed ^ stream.wrapping_mul(0xA24BAED4963EE407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// Construct the deterministic per-component RNG.
pub fn component_rng(global_seed: u64, component: u32) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(global_seed, component as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = component_rng(42, 7);
        let mut b = component_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = component_rng(42, 7);
        let mut b = component_rng(42, 8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seeds_differ() {
        let mut a = component_rng(1, 0);
        let mut b = component_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_reference() {
        // Reference values for SplitMix64 with state starting at 0
        // (from the published reference implementation).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
        assert_eq!(splitmix64(&mut s), 0x06C45D188009454F);
    }
}
