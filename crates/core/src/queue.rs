//! The pending-event set.
//!
//! Two implementations share the deterministic total order
//! `(time, class, tie)` defined in [`crate::event`]:
//!
//! * [`BinaryHeapQueue`] — the original single `BinaryHeap`. Kept as the
//!   reference implementation for differential tests and benchmarks.
//! * [`IndexedQueue`] — a two-level calendar queue: a ring of near-future
//!   buckets indexed by time plus a far-future overflow heap. Pushes into
//!   the near window are O(1) (append to a bucket); ordering work is done
//!   lazily, one bucket at a time, when the consumer reaches that bucket.
//!
//! [`EventQueue`] aliases the engine's default implementation.
//!
//! # IndexedQueue invariants
//!
//! Let `bucket(t) = t.as_ps() >> SHIFT`. At all times:
//!
//! * `cur` (the drained active bucket, sorted descending so the minimum
//!   pops from the back) plus `cur_extra` (a min-heap for events pushed at
//!   `bucket <= base` *after* the drain — zero-delay self events, remote
//!   stragglers) together hold every pending event with `bucket <= base`.
//! * `ring[slot]` holds events of exactly one bucket in `(base, base+RING)`,
//!   namely the one whose bucket number maps to `slot`; the slot for `base`
//!   itself is always empty (those events live in `cur`/`cur_extra`).
//! * `far` holds events in buckets `>= base + RING` — plus, transiently,
//!   events whose bucket fell inside the window after `base` jumped forward;
//!   `far`'s head is consulted on every advance, so these still pop in order.
//!
//! The structure never requires the engine's monotone-push invariant for
//! correctness: a push below `base` simply lands in `cur`, which is a real
//! heap. Monotone pushes are what make it *fast*.

use crate::event::{EventClass, EventKey, ScheduledEvent, TieBreak};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry(ScheduledEvent);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need min-first.
        other.0.key().cmp(&self.0.key())
    }
}

/// The operations an engine needs from a pending-event set. Both queue
/// implementations provide them; engines are generic over this trait so the
/// two can be compared differentially.
pub trait SimQueue: Default {
    fn push(&mut self, ev: ScheduledEvent);
    /// Earliest pending event time, if any.
    fn next_time(&self) -> Option<SimTime>;
    /// Pop the earliest event if its time is `<= limit`.
    fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent>;
    /// Pop the earliest event if its time is strictly `< limit`.
    fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent>;
    fn pop(&mut self) -> Option<ScheduledEvent>;
    /// Drain the entire run of events sharing the earliest pending time into
    /// `out` (appending), provided that time is `<= limit`. Returns the
    /// number drained (0 when nothing qualifies). Events land in `out` in
    /// delivery order. This is the batched-delivery primitive: engines drain
    /// one time instant at a time into a pooled buffer and amortize
    /// per-event queue and telemetry overhead across the batch.
    fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize;
    /// Pop the earliest event iff its key is strictly less than `key`.
    ///
    /// Engines call this between batch elements to interleave *stragglers* —
    /// events pushed by handlers inside the batch (zero-delay self events)
    /// whose key sorts before a not-yet-delivered batch element. O(1) on
    /// both implementations in the common no-straggler case.
    fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// A concrete-backend handle for fused batch delivery (see
    /// [`SinkRef`](crate::specialize::SinkRef)); lets the monomorphized group
    /// loop push without a virtual call per event.
    fn sink_ref(&mut self) -> crate::specialize::SinkRef<'_>;
    /// The backend actually in use, for run manifests and bench metadata.
    /// [`AutoQueue`] reports `"heap->indexed"` after migrating.
    fn backend_name(&self) -> &'static str;
}

/// The engine's default queue.
pub type EventQueue = IndexedQueue;

// ---------------------------------------------------------------------------
// BinaryHeapQueue — the reference implementation.
// ---------------------------------------------------------------------------

/// A deterministic min-priority event queue over one binary heap.
#[derive(Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl BinaryHeapQueue {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, ev: ScheduledEvent) {
        self.heap.push(HeapEntry(ev));
    }

    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    #[inline]
    pub fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.0.time <= limit) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.0.time < limit) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop().map(|e| e.0)
    }

    pub fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        let Some(t) = self.next_time().filter(|&t| t <= limit) else {
            return 0;
        };
        let start = out.len();
        while self.heap.peek().is_some_and(|e| e.0.time == t) {
            out.push(self.heap.pop().expect("peeked above").0);
        }
        out.len() - start
    }

    #[inline]
    pub fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.0.key() < key) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl SimQueue for BinaryHeapQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent) {
        BinaryHeapQueue::push(self, ev)
    }
    #[inline]
    fn next_time(&self) -> Option<SimTime> {
        BinaryHeapQueue::next_time(self)
    }
    #[inline]
    fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        BinaryHeapQueue::pop_until(self, limit)
    }
    #[inline]
    fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        BinaryHeapQueue::pop_before(self, limit)
    }
    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent> {
        BinaryHeapQueue::pop(self)
    }
    #[inline]
    fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        BinaryHeapQueue::pop_time_run(self, limit, out)
    }
    #[inline]
    fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        BinaryHeapQueue::pop_if_key_before(self, key)
    }
    #[inline]
    fn len(&self) -> usize {
        BinaryHeapQueue::len(self)
    }
    #[inline]
    fn sink_ref(&mut self) -> crate::specialize::SinkRef<'_> {
        crate::specialize::SinkRef::Heap(self)
    }
    fn backend_name(&self) -> &'static str {
        "heap"
    }
}

// ---------------------------------------------------------------------------
// IndexedQueue — calendar ring + far heap.
// ---------------------------------------------------------------------------

/// log2 of the bucket width in picoseconds: 1024 ps ≈ 1 ns per bucket, the
/// scale of typical link latencies and clock periods in this repo.
const SHIFT: u32 = 10;
/// Buckets in the near-future ring (must be a power of two). With SHIFT=10
/// the ring covers a ~1 µs window ahead of the consumer.
const RING: usize = 1024;
const MASK: u64 = RING as u64 - 1;
const WORDS: usize = RING / 64;

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.as_ps() >> SHIFT
}

/// The total-order key of an event, packed into one integer — valid only for
/// comparing events *within one bucket* (equal `time >> SHIFT`), where the
/// low `SHIFT` time bits plus the class bit and the `(src, seq)` tie-break
/// decide the full `(time, class, tie)` order. One unsigned compare replaces
/// a lexicographic walk whose time/class legs are usually equal (events in a
/// bucket bunch at the same instant), so the per-bucket sort runs on
/// predictable branches. Layout: `time_low:10 | class:1 | src:32 | seq:64`.
#[inline]
fn packed_bucket_key(e: &ScheduledEvent) -> u128 {
    let t = e.time.as_ps() & ((1u64 << SHIFT) - 1);
    ((t as u128) << 97)
        | ((e.class as u128) << 96)
        | ((e.tie.src.0 as u128) << 64)
        | e.tie.seq as u128
}

/// A deterministic min-priority event queue indexed by delivery time.
///
/// See the module docs for the layout. The common DES push — a handful of
/// nanoseconds ahead of `now` — is an O(1) `Vec::push` into a ring bucket
/// instead of an O(log n) sift through one global heap, and pops touch only
/// the (small) heap over the active bucket.
pub struct IndexedQueue {
    /// The drained active bucket, sorted descending (minimum at the back).
    /// One `sort_unstable` per bucket beats heap-pushing every event: the
    /// sort is a single cache-friendly pass instead of per-event sifts.
    cur: Vec<ScheduledEvent>,
    /// Events pushed at `bucket <= base` after the active bucket was
    /// drained. Rare (zero-delay self events, cross-rank stragglers), so a
    /// small side heap keeps them O(log) without re-sorting `cur`.
    cur_extra: BinaryHeap<HeapEntry>,
    /// Near-future buckets, indexed by `bucket & MASK`.
    ring: Vec<Vec<ScheduledEvent>>,
    /// Occupancy bitmap over `ring` for O(words) next-bucket scans.
    occ: [u64; WORDS],
    /// Total events in `ring`.
    ring_count: usize,
    /// Bucket number of the active bucket.
    base: u64,
    /// Events at or beyond `base + RING` (see module docs for the transient
    /// in-window case).
    far: BinaryHeap<HeapEntry>,
    len: usize,
    /// Reused `(packed key, index)` buffer for the per-bucket sort: ordering
    /// is decided on these 32-byte pairs, then applied to the 80-byte events
    /// with one cycle-walk of swaps, instead of dragging the events
    /// themselves through the sort.
    sort_scratch: Vec<(u128, u32)>,
    /// False only while `sort_scratch` holds a computed-but-unapplied
    /// permutation of `cur` (between [`build_perm`](Self::build_perm) and
    /// either [`apply_perm`](Self::apply_perm) or the gather fast path of
    /// [`pop_time_run`](Self::pop_time_run)). Always true at public method
    /// boundaries, so peeks may trust `cur`'s order.
    cur_sorted: bool,
    /// Grown-and-drained bucket allocations awaiting reuse. The window only
    /// moves forward, so a drained slot's capacity would otherwise idle a
    /// full ring wrap while the bucket at the push frontier re-grows from
    /// zero through the whole realloc ladder; `push` seeds empty buckets
    /// from this pool instead.
    spare: Vec<Vec<ScheduledEvent>>,
}

impl Default for IndexedQueue {
    fn default() -> Self {
        IndexedQueue {
            cur: Vec::new(),
            cur_extra: BinaryHeap::new(),
            ring: (0..RING).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
            ring_count: 0,
            base: 0,
            far: BinaryHeap::new(),
            len: 0,
            sort_scratch: Vec::new(),
            cur_sorted: true,
            spare: Vec::new(),
        }
    }
}

impl IndexedQueue {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, ev: ScheduledEvent) {
        self.len += 1;
        let b = bucket_of(ev.time);
        if b <= self.base {
            self.cur_extra.push(HeapEntry(ev));
        } else if b - self.base < RING as u64 {
            let slot = (b & MASK) as usize;
            let bucket = &mut self.ring[slot];
            if bucket.capacity() == 0 {
                if let Some(recycled) = self.spare.pop() {
                    *bucket = recycled;
                }
            }
            bucket.push(ev);
            self.occ[slot / 64] |= 1u64 << (slot % 64);
            self.ring_count += 1;
        } else {
            self.far.push(HeapEntry(ev));
        }
    }

    /// First occupied ring slot at or after `from`, scanning circularly.
    fn find_slot_from(&self, from: usize) -> Option<usize> {
        let (mut w, b) = (from / 64, from % 64);
        let mut word = self.occ[w] & (!0u64 << b);
        for _ in 0..=WORDS {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w = (w + 1) % WORDS;
            word = self.occ[w];
        }
        None
    }

    /// Absolute bucket number and slot of the earliest non-empty ring bucket.
    fn next_ring_bucket(&self) -> Option<(u64, usize)> {
        if self.ring_count == 0 {
            return None;
        }
        let base_slot = (self.base & MASK) as usize;
        let slot = self.find_slot_from((base_slot + 1) % RING)?;
        let offset = (slot + RING - base_slot) % RING;
        debug_assert!(offset != 0, "active bucket's slot must be empty");
        Some((self.base + offset as u64, slot))
    }

    /// Move `base` to the earliest non-empty bucket and drain it into `cur`.
    /// Returns false when the queue is empty. Only called with both `cur`
    /// and `cur_extra` empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.cur.is_empty() && self.cur_extra.is_empty());
        let ringb = self.next_ring_bucket();
        let farb = self.far.peek().map(|e| bucket_of(e.0.time));
        let nb = match (ringb, farb) {
            (None, None) => return false,
            (Some((rb, _)), None) => rb,
            (None, Some(fb)) => fb,
            (Some((rb, _)), Some(fb)) => rb.min(fb),
        };
        self.base = nb;
        if let Some((rb, slot)) = ringb {
            if rb == nb {
                self.ring_count -= self.ring[slot].len();
                // `cur` takes the bucket's contents; the bucket's slot gives
                // up `cur`'s old allocation to the spare pool, where the next
                // frontier bucket picks it up (this slot itself won't see a
                // push again until the window wraps all the way around).
                std::mem::swap(&mut self.cur, &mut self.ring[slot]);
                self.occ[slot / 64] &= !(1u64 << (slot % 64));
                let freed = std::mem::take(&mut self.ring[slot]);
                if freed.capacity() > 0 && self.spare.len() < 4 {
                    self.spare.push(freed);
                }
            }
        }
        while self.far.peek().is_some_and(|e| bucket_of(e.0.time) == nb) {
            let e = self.far.pop().unwrap();
            self.cur.push(e.0);
        }
        // Decide the order on compact keys now; defer *moving* the events
        // until a consumer actually needs sorted `cur` — a full single-
        // instant drain ([`pop_time_run`]) gathers through the permutation
        // instead and never pays the reorder.
        self.build_perm();
        true
    }

    /// Compute the descending sort permutation of the freshly drained active
    /// bucket into `sort_scratch`. Keys within one bucket pack into a `u128`
    /// ([`packed_bucket_key`]), so the order is decided on a compact
    /// `(key, source index)` array without touching the 80-byte events.
    /// Leaves `cur_sorted = false` (perm computed, not applied) unless the
    /// bucket is trivially sorted.
    fn build_perm(&mut self) {
        let n = self.cur.len();
        if n < 2 {
            self.cur_sorted = true;
            return;
        }
        let perm = &mut self.sort_scratch;
        perm.clear();
        perm.extend(
            self.cur
                .iter()
                .enumerate()
                .map(|(i, e)| (packed_bucket_key(e), i as u32)),
        );
        perm.sort_unstable_by_key(|&(key, _)| std::cmp::Reverse(key));
        self.cur_sorted = false;
    }

    /// Apply the pending permutation: `cur[p] <- old cur[perm[p]]` for every
    /// position `p`, walking each permutation cycle once (visited entries
    /// marked `u32::MAX`) — O(n) event moves total, versus O(n log n) had
    /// the events gone through the sort. Afterwards `cur` is descending
    /// (minimum at the back).
    fn apply_perm(&mut self) {
        let n = self.cur.len();
        let perm = &mut self.sort_scratch;
        for start in 0..n {
            if perm[start].1 == u32::MAX {
                continue;
            }
            let mut i = start;
            loop {
                let j = perm[i].1 as usize;
                perm[i].1 = u32::MAX;
                if j == start {
                    break;
                }
                self.cur.swap(i, j);
                i = j;
            }
        }
        self.cur_sorted = true;
    }

    #[inline]
    fn ensure_sorted(&mut self) {
        if !self.cur_sorted {
            self.apply_perm();
        }
    }

    /// Earliest pending event time, if any. O(1) while the active bucket is
    /// non-empty; otherwise one bitmap scan plus one pass over the next
    /// bucket (no mutation, so repeated peeks are safe).
    pub fn next_time(&self) -> Option<SimTime> {
        let head = match (self.cur.last(), self.cur_extra.peek()) {
            (Some(c), Some(x)) => Some(c.time.min(x.0.time)),
            (Some(c), None) => Some(c.time),
            (None, Some(x)) => Some(x.0.time),
            (None, None) => None,
        };
        if head.is_some() {
            return head;
        }
        let ring_min = self
            .next_ring_bucket()
            .map(|(_, slot)| self.ring[slot].iter().map(|e| e.time).min().unwrap());
        let far_min = self.far.peek().map(|e| e.0.time);
        match (ring_min, far_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pop the earliest event if its time is `<= limit`. Does not advance
    /// the window when the earliest event is beyond the limit, so later
    /// (remote) pushes inside the window keep O(1) bucket placement.
    #[inline]
    pub fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        match self.next_time() {
            Some(t) if t <= limit => self.pop(),
            _ => None,
        }
    }

    /// Pop the earliest event if its time is strictly `< limit`.
    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        match self.next_time() {
            Some(t) if t < limit => self.pop(),
            _ => None,
        }
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.cur.is_empty() && self.cur_extra.is_empty() && !self.advance() {
            return None;
        }
        self.ensure_sorted();
        // Both levels hold `bucket <= base`; take the smaller full key.
        let take_extra = match (self.cur.last(), self.cur_extra.peek()) {
            (Some(c), Some(x)) => x.0.key() < c.key(),
            (None, Some(_)) => true,
            _ => false,
        };
        let e = if take_extra {
            self.cur_extra.pop().expect("peeked above").0
        } else {
            self.cur.pop().expect("advance() fills cur")
        };
        self.len -= 1;
        Some(e)
    }

    /// Drain the whole run of events at the earliest pending time (when
    /// `<= limit`) into `out`. In the common case — no stragglers in
    /// `cur_extra` — the run is a contiguous suffix of the sorted active
    /// bucket, so this is a straight memcpy-style pop loop with no key
    /// comparisons beyond the time check.
    pub fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        if self.cur.is_empty() && self.cur_extra.is_empty() {
            if !self.advance() {
                return 0;
            }
            if !self.cur_sorted {
                // Freshly drained bucket with its permutation still pending.
                // If the whole bucket is one drainable instant — every bucket
                // is, for any workload with event spacing above the bucket
                // width — gather each event once, permutation-order, straight
                // into `out`: the reorder of `cur` and the element-by-element
                // drain both disappear.
                let n = self.cur.len();
                let perm = &self.sort_scratch;
                let tmin = self.cur[perm[n - 1].1 as usize].time;
                if tmin > limit {
                    self.apply_perm();
                    return 0;
                }
                if self.cur[perm[0].1 as usize].time == tmin {
                    let start = out.len();
                    out.reserve(n);
                    // SAFETY: `perm` holds each index in `0..n` exactly once,
                    // so every element of `cur` is moved out exactly once;
                    // `set_len(0)` then relinquishes ownership without
                    // dropping, and `out`'s new length is backed by the `n`
                    // writes into its reserved tail.
                    unsafe {
                        let src = self.cur.as_ptr();
                        let dst = out.as_mut_ptr().add(start);
                        for (k, &(_, idx)) in perm.iter().rev().enumerate() {
                            std::ptr::copy_nonoverlapping(src.add(idx as usize), dst.add(k), 1);
                        }
                        self.cur.set_len(0);
                        out.set_len(start + n);
                    }
                    self.cur_sorted = true;
                    self.len -= n;
                    return n;
                }
                self.apply_perm();
            }
        }
        let t = match (self.cur.last(), self.cur_extra.peek()) {
            (Some(c), Some(x)) => c.time.min(x.0.time),
            (Some(c), None) => c.time,
            (None, Some(x)) => x.0.time,
            (None, None) => unreachable!("advance() succeeded"),
        };
        if t > limit {
            return 0;
        }
        let start = out.len();
        if self.cur_extra.is_empty() {
            // Sorted descending, so if the *front* (maximum key) matches `t`
            // the whole bucket is one instant — drain it wholesale, back to
            // front, with no per-element time checks. Sub-nanosecond-period
            // workloads hit this on nearly every bucket.
            if self.cur.first().is_some_and(|e| e.time == t) {
                out.extend(self.cur.drain(..).rev());
            } else {
                while self.cur.last().is_some_and(|e| e.time == t) {
                    out.push(self.cur.pop().expect("checked above"));
                }
            }
        } else {
            // Stragglers present: merge the two active-bucket levels with
            // the same key rule as pop().
            loop {
                let take_extra = match (self.cur.last(), self.cur_extra.peek()) {
                    (Some(c), Some(x)) if c.time == t || x.0.time == t => x.0.key() < c.key(),
                    (Some(c), None) if c.time == t => false,
                    (None, Some(x)) if x.0.time == t => true,
                    _ => break,
                };
                let e = if take_extra {
                    self.cur_extra.pop().expect("peeked above").0
                } else {
                    self.cur.pop().expect("peeked above")
                };
                out.push(e);
            }
        }
        let n = out.len() - start;
        self.len -= n;
        n
    }

    /// Pop the earliest event iff its key precedes `key`. O(1) whenever the
    /// active bucket is non-empty — in particular between elements of a
    /// freshly drained batch, where any qualifying straggler must sit in
    /// `cur_extra` (later buckets hold strictly later times).
    #[inline]
    pub fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        let take_extra = match (self.cur.last(), self.cur_extra.peek()) {
            (Some(c), Some(x)) => {
                let (ck, xk) = (c.key(), x.0.key());
                if ck.min(xk) >= key {
                    return None;
                }
                xk < ck
            }
            (Some(c), None) => {
                if c.key() >= key {
                    return None;
                }
                false
            }
            (None, Some(x)) => {
                if x.0.key() >= key {
                    return None;
                }
                true
            }
            (None, None) => return self.pop_if_key_before_outside_window(key),
        };
        let e = if take_extra {
            self.cur_extra.pop().expect("peeked above").0
        } else {
            self.cur.pop().expect("peeked above")
        };
        self.len -= 1;
        Some(e)
    }

    /// Cold path of [`pop_if_key_before`](Self::pop_if_key_before): the
    /// active bucket is empty, so the earliest event (if any) lives in a
    /// later bucket. A strictly earlier *time* decides outright; on an exact
    /// time tie the event is popped for a full-key look and pushed back
    /// (landing in `cur_extra`, which preserves order) when it loses.
    fn pop_if_key_before_outside_window(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        // With both active levels empty, every pending event sits in a
        // bucket strictly after `base`; a probe key at or before `base`'s
        // bucket therefore cannot be preceded. This is the steady state of
        // batched delivery (probe time == the just-drained bucket), so it
        // must stay O(1) — the scan below walks the next bucket's contents.
        if bucket_of(key.0) <= self.base {
            return None;
        }
        match self.next_time() {
            Some(t) if t < key.0 => self.pop(),
            Some(t) if t == key.0 => {
                let e = self.pop().expect("next_time was Some");
                if e.key() < key {
                    Some(e)
                } else {
                    self.push(e);
                    None
                }
            }
            _ => None,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl SimQueue for IndexedQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent) {
        IndexedQueue::push(self, ev)
    }
    #[inline]
    fn next_time(&self) -> Option<SimTime> {
        IndexedQueue::next_time(self)
    }
    #[inline]
    fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        IndexedQueue::pop_until(self, limit)
    }
    #[inline]
    fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        IndexedQueue::pop_before(self, limit)
    }
    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent> {
        IndexedQueue::pop(self)
    }
    #[inline]
    fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        IndexedQueue::pop_time_run(self, limit, out)
    }
    #[inline]
    fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        IndexedQueue::pop_if_key_before(self, key)
    }
    #[inline]
    fn len(&self) -> usize {
        IndexedQueue::len(self)
    }
    #[inline]
    fn sink_ref(&mut self) -> crate::specialize::SinkRef<'_> {
        crate::specialize::SinkRef::Indexed(self)
    }
    fn backend_name(&self) -> &'static str {
        "indexed"
    }
}

// ---------------------------------------------------------------------------
// AutoQueue — depth-adaptive backend selection.
// ---------------------------------------------------------------------------

/// Pending-set depth at which [`AutoQueue`] migrates from the heap to the
/// calendar queue. DESIGN.md §5.2's hold-model sweep puts the crossover
/// between depth 64 (1.13×) and 256 (1.50× for indexed); shallow queues —
/// e.g. a ring with one token in flight — stay on the heap, whose tiny
/// working set wins there.
const AUTO_MIGRATE_DEPTH: usize = 192;

// One long-lived instance per engine: the variants' size difference is
// irrelevant, and boxing the calendar queue would put a pointer chase on
// every push/pop.
#[allow(clippy::large_enum_variant)]
enum AutoInner {
    Heap(BinaryHeapQueue),
    Indexed(IndexedQueue),
}

/// A queue that picks its backend from the workload's observed depth: starts
/// as a [`BinaryHeapQueue`], and the first time the pending set outgrows
/// [`AUTO_MIGRATE_DEPTH`] it drains into an [`IndexedQueue`] and stays
/// there. The migration moves events in pop order through the same total
/// order both backends share, so the delivered event sequence — and thus
/// every downstream byte — is identical to either fixed backend.
pub struct AutoQueue {
    inner: AutoInner,
    migrated: bool,
}

impl Default for AutoQueue {
    fn default() -> Self {
        AutoQueue {
            inner: AutoInner::Heap(BinaryHeapQueue::new()),
            migrated: false,
        }
    }
}

impl AutoQueue {
    pub fn new() -> Self {
        Self::default()
    }

    #[cold]
    fn migrate(&mut self) {
        let AutoInner::Heap(heap) = &mut self.inner else {
            return;
        };
        let mut indexed = IndexedQueue::new();
        let mut heap = std::mem::take(heap);
        while let Some(ev) = heap.pop() {
            indexed.push(ev);
        }
        self.inner = AutoInner::Indexed(indexed);
        self.migrated = true;
    }

    #[inline]
    pub fn push(&mut self, ev: ScheduledEvent) {
        match &mut self.inner {
            AutoInner::Heap(q) => {
                q.push(ev);
                if q.len() > AUTO_MIGRATE_DEPTH {
                    self.migrate();
                }
            }
            AutoInner::Indexed(q) => q.push(ev),
        }
    }

    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        match &self.inner {
            AutoInner::Heap(q) => q.next_time(),
            AutoInner::Indexed(q) => q.next_time(),
        }
    }

    #[inline]
    pub fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        match &mut self.inner {
            AutoInner::Heap(q) => q.pop_until(limit),
            AutoInner::Indexed(q) => q.pop_until(limit),
        }
    }

    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        match &mut self.inner {
            AutoInner::Heap(q) => q.pop_before(limit),
            AutoInner::Indexed(q) => q.pop_before(limit),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        match &mut self.inner {
            AutoInner::Heap(q) => q.pop(),
            AutoInner::Indexed(q) => q.pop(),
        }
    }

    #[inline]
    pub fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        match &mut self.inner {
            AutoInner::Heap(q) => q.pop_time_run(limit, out),
            AutoInner::Indexed(q) => q.pop_time_run(limit, out),
        }
    }

    #[inline]
    pub fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        match &mut self.inner {
            AutoInner::Heap(q) => q.pop_if_key_before(key),
            AutoInner::Indexed(q) => q.pop_if_key_before(key),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match &self.inner {
            AutoInner::Heap(q) => q.len(),
            AutoInner::Indexed(q) => q.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `"heap"` until migration, `"heap->indexed"` after.
    pub fn backend_name(&self) -> &'static str {
        if self.migrated {
            "heap->indexed"
        } else {
            "heap"
        }
    }
}

impl SimQueue for AutoQueue {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent) {
        AutoQueue::push(self, ev)
    }
    #[inline]
    fn next_time(&self) -> Option<SimTime> {
        AutoQueue::next_time(self)
    }
    #[inline]
    fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        AutoQueue::pop_until(self, limit)
    }
    #[inline]
    fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        AutoQueue::pop_before(self, limit)
    }
    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent> {
        AutoQueue::pop(self)
    }
    #[inline]
    fn pop_time_run(&mut self, limit: SimTime, out: &mut Vec<ScheduledEvent>) -> usize {
        AutoQueue::pop_time_run(self, limit, out)
    }
    #[inline]
    fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        AutoQueue::pop_if_key_before(self, key)
    }
    #[inline]
    fn len(&self) -> usize {
        AutoQueue::len(self)
    }
    #[inline]
    fn sink_ref(&mut self) -> crate::specialize::SinkRef<'_> {
        crate::specialize::SinkRef::Auto(self)
    }
    fn backend_name(&self) -> &'static str {
        AutoQueue::backend_name(self)
    }
}

/// Convenience for tests: order keys only.
pub fn key_order(
    a: (SimTime, EventClass, TieBreak),
    b: (SimTime, EventClass, TieBreak),
) -> Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, EventKind, PayloadSlot, PortId};

    fn ev(t: u64, class: EventClass, src: u32, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: SimTime::ps(t),
            class,
            tie: TieBreak {
                src: ComponentId(src),
                seq,
            },
            target: ComponentId(0),
            kind: EventKind::Message {
                port: PortId(0),
                payload: PayloadSlot::new(()),
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, EventClass::Message, 0, 0));
        q.push(ev(10, EventClass::Message, 0, 1));
        q.push(ev(20, EventClass::Message, 0, 2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ps())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn clock_before_message_at_same_time() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 0, 0));
        q.push(ev(10, EventClass::Clock, 5, 9));
        assert_eq!(q.pop().unwrap().class, EventClass::Clock);
        assert_eq!(q.pop().unwrap().class, EventClass::Message);
    }

    #[test]
    fn tiebreak_by_src_then_seq() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 2, 0));
        q.push(ev(10, EventClass::Message, 1, 7));
        q.push(ev(10, EventClass::Message, 1, 3));
        let ties: Vec<(u32, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.tie.src.0, e.tie.seq))
            .collect();
        assert_eq!(ties, vec![(1, 3), (1, 7), (2, 0)]);
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 0, 0));
        q.push(ev(20, EventClass::Message, 0, 1));
        assert!(q.pop_until(SimTime::ps(10)).is_some());
        assert!(q.pop_until(SimTime::ps(10)).is_none());
        assert!(q.pop_before(SimTime::ps(20)).is_none());
        assert!(q.pop_before(SimTime::ps(21)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(ev(42, EventClass::Message, 0, 0));
        assert_eq!(q.next_time(), Some(SimTime::ps(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn spans_ring_and_far_buckets() {
        // One event per region: active bucket, mid-ring, past the window.
        let mut q = IndexedQueue::new();
        let far = (RING as u64 + 5) << SHIFT; // beyond the near window
        q.push(ev(far, EventClass::Message, 0, 2));
        q.push(ev(5, EventClass::Message, 0, 0));
        q.push(ev(3 << SHIFT, EventClass::Message, 0, 1));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ps())
            .collect();
        assert_eq!(times, vec![5, 3 << SHIFT, far]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_entering_window_stay_ordered() {
        // A far event and a ring event in the same bucket must interleave
        // by tie-break even though they live in different levels.
        let mut q = IndexedQueue::new();
        let t = (RING as u64 + 1) << SHIFT;
        q.push(ev(t, EventClass::Message, 2, 0)); // goes to far
        q.push(ev(0, EventClass::Message, 0, 0)); // active bucket
        assert_eq!(q.pop().unwrap().time.as_ps(), 0);
        // Window has moved; same bucket now reachable from the ring side.
        q.push(ev(t, EventClass::Message, 1, 0));
        let ties: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| e.tie.src.0)
            .collect();
        assert_eq!(ties, vec![1, 2]);
    }

    #[test]
    fn push_below_base_still_pops_in_order() {
        // After the window advances past t=100, a push at an earlier time
        // (legal for a remote event between conservative windows) must still
        // pop before everything later.
        let mut q = IndexedQueue::new();
        q.push(ev(500 << SHIFT, EventClass::Message, 0, 0));
        assert_eq!(q.pop().unwrap().time.as_ps(), 500 << SHIFT); // base jumped
        q.push(ev(100, EventClass::Message, 0, 1));
        q.push(ev(600 << SHIFT, EventClass::Message, 0, 2));
        assert_eq!(q.pop().unwrap().time.as_ps(), 100);
        assert_eq!(q.pop().unwrap().time.as_ps(), 600 << SHIFT);
    }

    #[test]
    fn matches_heap_queue_on_mixed_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops across
        // both implementations; orders must be identical event for event.
        let mut a = BinaryHeapQueue::new();
        let mut b = IndexedQueue::new();
        let mut x = 0x1234_5678_9ABC_DEFFu64;
        let mut next = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let mut popped = 0u64;
        for i in 0..5000u64 {
            // Mostly near-future, occasionally far-future, duplicate-heavy.
            let t = popped + next(1 << 14) * if next(10) == 0 { 1000 } else { 1 };
            let class = if next(4) == 0 {
                EventClass::Clock
            } else {
                EventClass::Message
            };
            let e1 = ev(t, class, next(8) as u32, i);
            let e2 = ev(t, class, e1.tie.src.0, i);
            a.push(e1);
            b.push(e2);
            if next(3) == 0 {
                let pa = a.pop().unwrap();
                let pb = b.pop().unwrap();
                assert_eq!(pa.key(), pb.key());
                popped = pa.time.as_ps();
            }
        }
        loop {
            match (a.pop(), b.pop()) {
                (None, None) => break,
                (pa, pb) => {
                    assert_eq!(pa.unwrap().key(), pb.unwrap().key());
                }
            }
        }
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn pop_time_run_drains_exactly_one_instant() {
        fn check<Q: SimQueue>() {
            let mut q = Q::default();
            q.push(ev(10, EventClass::Message, 2, 0));
            q.push(ev(10, EventClass::Clock, 1, 0));
            q.push(ev(10, EventClass::Message, 1, 5));
            q.push(ev(20, EventClass::Message, 0, 0));
            let mut out = Vec::new();
            // Limit below the earliest instant: nothing drained.
            assert_eq!(q.pop_time_run(SimTime::ps(9), &mut out), 0);
            assert_eq!(q.pop_time_run(SimTime::ps(10), &mut out), 3);
            let keys: Vec<_> = out.iter().map(|e| (e.class, e.tie.src.0)).collect();
            assert_eq!(
                keys,
                vec![
                    (EventClass::Clock, 1),
                    (EventClass::Message, 1),
                    (EventClass::Message, 2)
                ]
            );
            assert_eq!(q.len(), 1, "t=20 event stays queued");
            out.clear();
            assert_eq!(q.pop_time_run(SimTime::ps(100), &mut out), 1);
            assert!(q.is_empty());
        }
        check::<BinaryHeapQueue>();
        check::<IndexedQueue>();
    }

    #[test]
    fn pop_if_key_before_interleaves_stragglers() {
        fn check<Q: SimQueue>() {
            let mut q = Q::default();
            q.push(ev(10, EventClass::Message, 3, 0));
            q.push(ev(10, EventClass::Message, 5, 0));
            let mut batch = Vec::new();
            assert_eq!(q.pop_time_run(SimTime::ps(10), &mut batch), 2);
            // A zero-delay straggler from src 4 lands between the batch
            // elements; one from src 9 lands after both.
            q.push(ev(10, EventClass::Message, 4, 0));
            q.push(ev(10, EventClass::Message, 9, 0));
            assert!(q.pop_if_key_before(batch[0].key()).is_none(), "src3 first");
            let s = q.pop_if_key_before(batch[1].key()).expect("src4 < src5");
            assert_eq!(s.tie.src.0, 4);
            assert!(q.pop_if_key_before(batch[1].key()).is_none());
            assert_eq!(q.pop().unwrap().tie.src.0, 9);
        }
        check::<BinaryHeapQueue>();
        check::<IndexedQueue>();
    }

    #[test]
    fn pop_if_key_before_crosses_buckets() {
        // The cold path: active bucket empty, candidate lives in the ring.
        let mut q = IndexedQueue::new();
        q.push(ev(5 << SHIFT, EventClass::Message, 1, 0));
        let probe = |src: u32| {
            (
                SimTime::ps(5 << SHIFT),
                EventClass::Message,
                TieBreak {
                    src: ComponentId(src),
                    seq: 0,
                },
            )
        };
        // Same time, smaller tie: must not pop (and must not lose the event).
        assert!(q.pop_if_key_before(probe(0)).is_none());
        assert_eq!(q.len(), 1);
        // Same time, larger tie: pops.
        assert_eq!(q.pop_if_key_before(probe(2)).unwrap().tie.src.0, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn auto_queue_migrates_and_stays_ordered() {
        let mut auto = AutoQueue::new();
        let mut reference = BinaryHeapQueue::new();
        assert_eq!(auto.backend_name(), "heap");
        // Push enough to cross the migration depth, with duplicate times and
        // mixed classes so ordering across the migration is exercised.
        for i in 0..(AUTO_MIGRATE_DEPTH as u64 + 100) {
            let class = if i % 5 == 0 {
                EventClass::Clock
            } else {
                EventClass::Message
            };
            let e = ev(i % 97 * 1000, class, (i % 7) as u32, i);
            auto.push(e);
            reference.push(ev(i % 97 * 1000, class, (i % 7) as u32, i));
        }
        assert_eq!(auto.backend_name(), "heap->indexed");
        assert_eq!(auto.len(), AUTO_MIGRATE_DEPTH + 100);
        loop {
            match (auto.pop(), reference.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a.unwrap().key(), b.unwrap().key()),
            }
        }
        assert!(auto.is_empty());
    }

    #[test]
    fn auto_queue_shallow_stays_heap() {
        let mut auto = AutoQueue::new();
        for i in 0..1000u64 {
            auto.push(ev(i, EventClass::Message, 0, i));
            auto.pop();
        }
        assert_eq!(auto.backend_name(), "heap");
    }

    #[test]
    fn len_tracks_across_levels() {
        let mut q = IndexedQueue::new();
        for i in 0..100u64 {
            q.push(ev(i * 3000, EventClass::Message, 0, i));
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop();
        }
        assert_eq!(q.len(), 60);
    }
}
