//! The pending-event set: a min-heap over the deterministic total order
//! `(time, class, tie)` defined in [`crate::event`].

use crate::event::{EventClass, ScheduledEvent, TieBreak};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry(ScheduledEvent);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need min-first.
        other.0.key().cmp(&self.0.key())
    }
}

/// A deterministic min-priority event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, ev: ScheduledEvent) {
        self.heap.push(HeapEntry(ev));
    }

    /// Earliest pending event time, if any.
    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pop the earliest event if its time is `<= limit`.
    #[inline]
    pub fn pop_until(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.0.time <= limit) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    /// Pop the earliest event if its time is strictly `< limit`.
    #[inline]
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent> {
        if self.heap.peek().is_some_and(|e| e.0.time < limit) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop().map(|e| e.0)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Convenience for tests: order keys only.
pub fn key_order(a: (SimTime, EventClass, TieBreak), b: (SimTime, EventClass, TieBreak)) -> Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, EventKind, PortId};

    fn ev(t: u64, class: EventClass, src: u32, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: SimTime::ps(t),
            class,
            tie: TieBreak {
                src: ComponentId(src),
                seq,
            },
            target: ComponentId(0),
            kind: EventKind::Message {
                port: PortId(0),
                payload: Box::new(()),
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, EventClass::Message, 0, 0));
        q.push(ev(10, EventClass::Message, 0, 1));
        q.push(ev(20, EventClass::Message, 0, 2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_ps())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn clock_before_message_at_same_time() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 0, 0));
        q.push(ev(10, EventClass::Clock, 5, 9));
        assert_eq!(q.pop().unwrap().class, EventClass::Clock);
        assert_eq!(q.pop().unwrap().class, EventClass::Message);
    }

    #[test]
    fn tiebreak_by_src_then_seq() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 2, 0));
        q.push(ev(10, EventClass::Message, 1, 7));
        q.push(ev(10, EventClass::Message, 1, 3));
        let ties: Vec<(u32, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.tie.src.0, e.tie.seq))
            .collect();
        assert_eq!(ties, vec![(1, 3), (1, 7), (2, 0)]);
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.push(ev(10, EventClass::Message, 0, 0));
        q.push(ev(20, EventClass::Message, 0, 1));
        assert!(q.pop_until(SimTime::ps(10)).is_some());
        assert!(q.pop_until(SimTime::ps(10)).is_none());
        assert!(q.pop_before(SimTime::ps(20)).is_none());
        assert!(q.pop_before(SimTime::ps(21)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(ev(42, EventClass::Message, 0, 0));
        assert_eq!(q.next_time(), Some(SimTime::ps(42)));
        assert_eq!(q.len(), 1);
    }
}
