//! # sst-core — The Structural Simulation Toolkit core engine
//!
//! A Rust reproduction of the core of the **Structural Simulation Toolkit**
//! (Rodrigues, Murphy, Kogge, Underwood — SC'06): a *parallel*, *modular*,
//! component-based discrete-event simulator for exploring novel
//! high-performance-computing architectures.
//!
//! The model:
//!
//! * A simulated system is a graph of [`Component`]s connected by **links**
//!   with non-zero latency. Components interact only by exchanging events
//!   over links — never by direct calls.
//! * Components may also register **clocks** and receive periodic ticks;
//!   idle components suspend their clocks so they cost nothing.
//! * The non-zero link latency is the **lookahead** that lets the
//!   [`ParallelEngine`] partition the graph over ranks and run a
//!   conservative (no-rollback) parallel simulation that is *bit-identical*
//!   to the serial run.
//!
//! ```
//! use sst_core::prelude::*;
//!
//! #[derive(Debug)]
//! struct Ping(u32);
//!
//! struct Bouncer { limit: u32 }
//! impl Component for Bouncer {
//!     fn setup(&mut self, ctx: &mut SimCtx<'_>) {
//!         if ctx.name() == "a" { ctx.send(PortId(0), Ping(0)); }
//!     }
//!     fn on_event(&mut self, _p: PortId, ev: PayloadSlot, ctx: &mut SimCtx<'_>) {
//!         let ping = downcast::<Ping>(ev);
//!         if ping.0 < self.limit { ctx.send(PortId(0), Ping(ping.0 + 1)); }
//!     }
//! }
//!
//! let mut b = SystemBuilder::new();
//! let a = b.add("a", Bouncer { limit: 10 });
//! let c = b.add("b", Bouncer { limit: 10 });
//! b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(5));
//! let report = Engine::new(b).run(RunLimit::Exhaust);
//! assert_eq!(report.events, 11);
//! ```

pub mod builder;
pub mod component;
pub mod config;
pub mod engine;
pub mod event;
pub mod fidelity;
pub mod parallel;
pub mod params;
pub mod partition;
pub mod queue;
pub mod rng;
pub mod snapshot;
pub mod specialize;
pub mod stats;
pub mod sweep;
pub mod telemetry;
pub mod time;

pub use builder::{LazyLink, LazySystem, SystemBuilder};
pub use component::{ClockAction, Component, EventSink, SimCtx};
pub use config::{ComponentRegistry, ConfigError, SystemConfig};
pub use engine::{AutoEngine, Engine, EngineOn, HeapEngine, RunLimit, SimReport};
pub use event::{
    downcast, ClockId, ComponentId, Payload, PayloadSlot, PortId, INLINE_PAYLOAD_BYTES, SELF_PORT,
};
pub use fidelity::{Fidelity, ParseFidelityError};
pub use parallel::{ParallelConfig, ParallelEngine, SyncMode, TransportKind};
pub use params::{ParamError, Params};
pub use partition::{PartitionStrategy, PartitionSummary};
pub use queue::{AutoQueue, BinaryHeapQueue, EventQueue, IndexedQueue, SimQueue};
pub use snapshot::{register_payload, Snapshot, SNAPSHOT_SCHEMA};
pub use specialize::{ChainSpec, FuseKey, FusedGroup};
pub use stats::{StatId, StatKind, StatsRegistry, StatsSnapshot};
pub use sweep::{run_jobs, CacheStats, CachedResult, ResultCache, SchedStats};
pub use telemetry::live::{LiveMetrics, MetricsServer, WatchdogCfg};
pub use telemetry::{
    EngineProfile, ProfileDump, RunManifest, StatsSeries, TelemetryOptions, TelemetrySpec,
    TelemetrySummary,
};
pub use time::{Frequency, SimTime};

/// One-line import for component authors and simulation drivers.
pub mod prelude {
    pub use crate::builder::{LazyLink, LazySystem, SystemBuilder};
    pub use crate::component::{ClockAction, Component, SimCtx};
    pub use crate::config::{ComponentRegistry, SystemConfig};
    pub use crate::engine::{AutoEngine, Engine, RunLimit, SimReport};
    pub use crate::event::{
        downcast, ClockId, ComponentId, Payload, PayloadSlot, PortId, SELF_PORT,
    };
    pub use crate::fidelity::Fidelity;
    pub use crate::parallel::{ParallelConfig, ParallelEngine, SyncMode, TransportKind};
    pub use crate::params::Params;
    pub use crate::partition::{PartitionStrategy, PartitionSummary};
    pub use crate::snapshot::{register_payload, Snapshot};
    pub use crate::specialize::{ChainSpec, FuseKey, FusedGroup};
    pub use crate::stats::StatId;
    pub use crate::sweep::{run_jobs, CachedResult, ResultCache};
    pub use crate::telemetry::live::{LiveMetrics, MetricsServer, WatchdogCfg};
    pub use crate::telemetry::{TelemetryOptions, TelemetrySpec};
    pub use crate::time::{Frequency, SimTime};
}
