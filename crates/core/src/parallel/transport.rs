//! The rank transport seam: how batches move between ranks.
//!
//! Everything that crosses a rank boundary — cross-rank events, EOT/null
//! announcements, end-of-segment drains — moves through a [`RankEndpoint`],
//! one per rank per segment. The synchronization *protocol* (what to send,
//! when it is safe to process) lives in [`sync`](super::sync) and the rank
//! loop; the transport only moves bytes, which is what makes the backends
//! substitutable:
//!
//! * [`TransportKind::SharedMem`] — the in-process baseline: one crossbeam
//!   channel per rank, batches move by pointer. Zero-copy, zero-serialize.
//! * [`TransportKind::TcpLoopback`] — every neighbor pair gets a real TCP
//!   connection over 127.0.0.1 and batches are serialized into
//!   length-prefixed JSON frames. Deliberately *not* fast: it exists to
//!   prove the seam carries everything the protocol needs (a distributed
//!   backend slots in behind the same trait), and to let the differential
//!   suite assert bit-identical results across a genuine wire.
//!
//! # Framing (TCP)
//!
//! Each frame is `[u32 little-endian payload length][payload]`, where the
//! payload is the JSON encoding of a [`WireBatch`]: sender rank, EOT promise
//! (ps), a FIN flag, and the events encoded with the same payload-codec
//! registry checkpoints use ([`register_payload`](crate::snapshot::register_payload)
//! is therefore required for any payload that crosses ranks over TCP).
//! TCP's per-stream FIFO preserves the only ordering the conservative
//! protocol needs — per-pair EOT monotonicity; arrival interleaving across
//! different peers is irrelevant.
//!
//! # Drain handshake
//!
//! Segment teardown is two-phase across *all* endpoints: first every
//! endpoint announces FIN to its peers ([`RankEndpoint::begin_drain`]),
//! then each collects in-flight batches until every peer's FIN has arrived
//! ([`RankEndpoint::finish_drain`]). Interleaving the phases per endpoint
//! would deadlock the TCP backend (two peers each waiting for the other's
//! FIN before sending their own).

use crate::event::ScheduledEvent;
use crate::snapshot::{self, EventSnap};
use crate::telemetry::live::TransportLive;
use crate::time::SimTime;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use serde::{Deserialize, Serialize};
use std::io::{BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One hop of the synchronization protocol: zero or more cross-rank events
/// plus an EOT promise (in ps). An empty `events` is a pure null message.
pub(crate) struct Batch {
    pub from: u32,
    pub events: Vec<ScheduledEvent>,
    pub eot: u64,
}

/// Which transport backend carries cross-rank traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels (the default; batches move by pointer).
    #[default]
    SharedMem,
    /// Length-prefixed JSON frames over per-pair TCP loopback connections.
    /// Requires registered payload codecs, exactly like checkpointing.
    TcpLoopback,
}

impl TransportKind {
    pub const ALL: &'static [TransportKind] =
        &[TransportKind::SharedMem, TransportKind::TcpLoopback];
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::SharedMem => "shm",
            TransportKind::TcpLoopback => "tcp",
        })
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "shm" | "shared-mem" | "shared" => Ok(TransportKind::SharedMem),
            "tcp" | "tcp-loopback" => Ok(TransportKind::TcpLoopback),
            other => Err(format!(
                "unknown transport `{other}` (expected `shm` or `tcp`)"
            )),
        }
    }
}

/// Outcome of a blocking receive with a timeout.
pub(crate) enum Recv {
    Batch(Batch),
    Timeout,
    Closed,
}

/// One rank's handle on the transport fabric for one segment.
///
/// Contract: `send` enqueues a batch toward a *neighbor* rank (ranks that
/// share no link never address each other); `flush` pushes any buffered
/// wire writes out — the rank loop calls it once per announcement round, so
/// a backend may coalesce all of a round's EOT announcements into one
/// syscall per peer, but must never hold traffic across a blocking wait
/// (liveness: an unflushed promise can release a stalled neighbor).
pub(crate) trait RankEndpoint: Send {
    fn send(&mut self, to: u32, batch: Batch);
    /// Push buffered frames to the wire. No-op for shared memory.
    fn flush(&mut self);
    fn try_recv(&mut self) -> Option<Batch>;
    fn recv_timeout(&mut self, timeout: Duration) -> Recv;
    /// Phase 1 of segment teardown (main thread, all ranks joined): tell
    /// every peer this endpoint will send nothing further this segment.
    fn begin_drain(&mut self);
    /// Phase 2: deliver every batch still in flight to `sink`, returning
    /// once all peers' `begin_drain` announcements have been seen.
    fn finish_drain(&mut self, sink: &mut dyn FnMut(Batch));
}

/// Build the segment's transport fabric: one endpoint per rank. `pair_la`
/// (the pairwise lookahead matrix) doubles as the neighbor map — the TCP
/// backend only opens connections between ranks that actually exchange
/// traffic.
pub(crate) fn connect(
    kind: TransportKind,
    n_ranks: u32,
    pair_la: &[Vec<Option<SimTime>>],
    live: Option<Arc<TransportLive>>,
) -> Vec<Box<dyn RankEndpoint>> {
    match kind {
        TransportKind::SharedMem => connect_shared_mem(n_ranks, live),
        TransportKind::TcpLoopback => connect_tcp(n_ranks, pair_la, live),
    }
}

// --- shared memory -------------------------------------------------------

struct SharedMemEndpoint {
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    live: Option<Arc<TransportLive>>,
}

impl RankEndpoint for SharedMemEndpoint {
    fn send(&mut self, to: u32, batch: Batch) {
        if let Some(l) = &self.live {
            // No wire to measure: report the in-memory payload moved.
            l.sent((batch.events.len() * std::mem::size_of::<ScheduledEvent>()) as u64);
        }
        // A closed channel means the peer's endpoint was already dropped
        // (cannot happen mid-segment; defensive for teardown ordering).
        let _ = self.senders[to as usize].send(batch);
    }

    fn flush(&mut self) {}

    fn try_recv(&mut self) -> Option<Batch> {
        self.rx.try_recv().ok()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Recv {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Recv::Batch(b),
            Err(RecvTimeoutError::Timeout) => Recv::Timeout,
            Err(RecvTimeoutError::Disconnected) => Recv::Closed,
        }
    }

    fn begin_drain(&mut self) {}

    fn finish_drain(&mut self, sink: &mut dyn FnMut(Batch)) {
        // All rank threads joined before the drain: every send happened
        // before this call, so a non-blocking sweep sees everything.
        while let Ok(b) = self.rx.try_recv() {
            sink(b);
        }
    }
}

fn connect_shared_mem(
    n_ranks: u32,
    live: Option<Arc<TransportLive>>,
) -> Vec<Box<dyn RankEndpoint>> {
    let n = n_ranks as usize;
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .map(|rx| {
            Box::new(SharedMemEndpoint {
                senders: txs.clone(),
                rx,
                live: live.clone(),
            }) as Box<dyn RankEndpoint>
        })
        .collect()
}

// --- TCP loopback --------------------------------------------------------

/// The on-wire batch: events encoded through the snapshot payload-codec
/// registry (non-destructive on the sender; rebuilt with fresh boxes on the
/// receiver, bit-identical by the same argument as checkpoint restore).
#[derive(Serialize, Deserialize)]
struct WireBatch {
    from: u32,
    eot: u64,
    fin: bool,
    events: Vec<EventSnap>,
}

enum TcpMsg {
    Batch(Batch),
    Fin,
}

struct TcpEndpoint {
    me: u32,
    /// Buffered writer per neighbor rank; `None` for non-neighbors.
    writers: Vec<Option<BufWriter<TcpStream>>>,
    inbox_rx: Receiver<TcpMsg>,
    /// Keeps the inbox open even with zero peers or exited readers, so an
    /// idle rank sees `Timeout` (like shared memory), never `Closed`.
    _inbox_tx: Sender<TcpMsg>,
    readers: Vec<JoinHandle<()>>,
    fins_seen: usize,
    live: Option<Arc<TransportLive>>,
}

/// Write one length-prefixed frame, returning the exact wire bytes.
fn write_frame(w: &mut BufWriter<TcpStream>, wire: &WireBatch) -> u64 {
    let json = serde_json::to_string(wire).expect("wire batch serializes");
    let bytes = json.as_bytes();
    w.write_all(&(bytes.len() as u32).to_le_bytes())
        .and_then(|_| w.write_all(bytes))
        .expect("tcp transport write failed");
    4 + bytes.len() as u64
}

impl RankEndpoint for TcpEndpoint {
    fn send(&mut self, to: u32, batch: Batch) {
        let events: Vec<EventSnap> = batch
            .events
            .into_iter()
            .map(|ev| snapshot::encode_event(ev).0)
            .collect();
        let wire = WireBatch {
            from: batch.from,
            eot: batch.eot,
            fin: false,
            events,
        };
        let w = self.writers[to as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("rank {} sent to non-neighbor rank {to}", self.me));
        let wrote = write_frame(w, &wire);
        if let Some(l) = &self.live {
            l.sent(wrote);
        }
    }

    fn flush(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            w.flush().expect("tcp transport flush failed");
        }
    }

    fn try_recv(&mut self) -> Option<Batch> {
        loop {
            match self.inbox_rx.try_recv() {
                Ok(TcpMsg::Batch(b)) => return Some(b),
                Ok(TcpMsg::Fin) => self.fins_seen += 1,
                Err(_) => return None,
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Recv {
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(TcpMsg::Batch(b)) => Recv::Batch(b),
            Ok(TcpMsg::Fin) => {
                self.fins_seen += 1;
                Recv::Timeout
            }
            Err(RecvTimeoutError::Timeout) => Recv::Timeout,
            Err(RecvTimeoutError::Disconnected) => Recv::Closed,
        }
    }

    fn begin_drain(&mut self) {
        let me = self.me;
        for w in self.writers.iter_mut().flatten() {
            let wrote = write_frame(
                w,
                &WireBatch {
                    from: me,
                    eot: 0,
                    fin: true,
                    events: Vec::new(),
                },
            );
            if let Some(l) = &self.live {
                l.sent(wrote);
            }
            w.flush().expect("tcp transport FIN flush failed");
        }
    }

    fn finish_drain(&mut self, sink: &mut dyn FnMut(Batch)) {
        // Per-stream FIFO: a peer's FIN is the last thing its reader
        // forwards, so once every peer's FIN is counted nothing else can be
        // in flight.
        let expected = self.writers.iter().flatten().count();
        while self.fins_seen < expected {
            match self.inbox_rx.recv_timeout(Duration::from_secs(30)) {
                Ok(TcpMsg::Batch(b)) => sink(b),
                Ok(TcpMsg::Fin) => self.fins_seen += 1,
                Err(_) => panic!("tcp transport drain timed out waiting for a peer FIN"),
            }
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, tx: Sender<TcpMsg>) {
    let mut len_buf = [0u8; 4];
    loop {
        // A clean EOF here means the peer endpoint was dropped after its
        // FIN; anything mid-frame is a transport bug.
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        stream.read_exact(&mut buf).expect("truncated tcp frame");
        let text = std::str::from_utf8(&buf).expect("tcp frame is not utf-8");
        let wire: WireBatch = serde_json::from_str(text).expect("malformed tcp frame");
        if wire.fin {
            let _ = tx.send(TcpMsg::Fin);
            return;
        }
        let events: Vec<ScheduledEvent> = wire.events.iter().map(snapshot::decode_event).collect();
        let ok = tx.send(TcpMsg::Batch(Batch {
            from: wire.from,
            events,
            eot: wire.eot,
        }));
        if ok.is_err() {
            return;
        }
    }
}

fn connect_tcp(
    n_ranks: u32,
    pair_la: &[Vec<Option<SimTime>>],
    live: Option<Arc<TransportLive>>,
) -> Vec<Box<dyn RankEndpoint>> {
    let n = n_ranks as usize;
    let inboxes: Vec<(Sender<TcpMsg>, Receiver<TcpMsg>)> = (0..n).map(|_| unbounded()).collect();
    let mut writers: Vec<Vec<Option<BufWriter<TcpStream>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut readers: Vec<Vec<JoinHandle<()>>> = (0..n).map(|_| Vec::new()).collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tcp loopback");
    let addr = listener.local_addr().expect("loopback address");
    for (r, row) in pair_la.iter().enumerate() {
        for (s, la) in row.iter().enumerate().skip(r + 1) {
            if la.is_none() {
                continue;
            }
            // The connect completes through the listener's backlog, so the
            // sequential connect-then-accept cannot deadlock, and with a
            // single setup thread the accepted stream is always the one
            // just connected.
            let a = TcpStream::connect(addr).expect("connect tcp loopback");
            let (b, _) = listener.accept().expect("accept tcp loopback");
            for (me, stream) in [(r, a), (s, b)] {
                let peer = if me == r { s } else { r };
                stream.set_nodelay(true).expect("set nodelay");
                let read_half = stream.try_clone().expect("clone tcp stream");
                writers[me][peer] = Some(BufWriter::new(stream));
                let tx = inboxes[me].0.clone();
                readers[me].push(std::thread::spawn(move || reader_loop(read_half, tx)));
            }
        }
    }

    inboxes
        .into_iter()
        .zip(writers)
        .zip(readers)
        .enumerate()
        .map(|(me, (((tx, rx), writers), readers))| {
            Box::new(TcpEndpoint {
                me: me as u32,
                writers,
                inbox_rx: rx,
                _inbox_tx: tx,
                readers,
                fins_seen: 0,
                live: live.clone(),
            }) as Box<dyn RankEndpoint>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_parses_and_prints() {
        for (text, kind) in [
            ("shm", TransportKind::SharedMem),
            ("shared-mem", TransportKind::SharedMem),
            ("tcp", TransportKind::TcpLoopback),
            ("tcp-loopback", TransportKind::TcpLoopback),
        ] {
            assert_eq!(text.parse::<TransportKind>().unwrap(), kind);
        }
        assert!("mpi".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::SharedMem.to_string(), "shm");
        assert_eq!(TransportKind::TcpLoopback.to_string(), "tcp");
    }

    #[test]
    fn shared_mem_round_trip_and_drain() {
        let mut eps = connect(TransportKind::SharedMem, 2, &[vec![], vec![]], None);
        let (a, b) = eps.split_at_mut(1);
        a[0].send(
            1,
            Batch {
                from: 0,
                events: Vec::new(),
                eot: 42,
            },
        );
        a[0].flush();
        match b[0].recv_timeout(Duration::from_secs(1)) {
            Recv::Batch(batch) => {
                assert_eq!(batch.from, 0);
                assert_eq!(batch.eot, 42);
            }
            _ => panic!("expected a batch"),
        }
        for e in eps.iter_mut() {
            e.begin_drain();
        }
        for e in eps.iter_mut() {
            e.finish_drain(&mut |_| panic!("nothing should remain"));
        }
    }

    #[test]
    fn tcp_loopback_round_trip_and_drain() {
        use crate::time::SimTime;
        let la = Some(SimTime::ns(1));
        let pair_la = vec![vec![None, la], vec![la, None]];
        let mut eps = connect(TransportKind::TcpLoopback, 2, &pair_la, None);
        let (a, b) = eps.split_at_mut(1);
        a[0].send(
            1,
            Batch {
                from: 0,
                events: Vec::new(),
                eot: 7,
            },
        );
        a[0].flush();
        match b[0].recv_timeout(Duration::from_secs(5)) {
            Recv::Batch(batch) => {
                assert_eq!(batch.from, 0);
                assert_eq!(batch.eot, 7);
                assert!(batch.events.is_empty());
            }
            _ => panic!("expected a batch over tcp"),
        }
        // Unflushed frames must not be visible yet.
        b[0].send(
            0,
            Batch {
                from: 1,
                events: Vec::new(),
                eot: 9,
            },
        );
        assert!(a[0].try_recv().is_none());
        b[0].flush();
        match a[0].recv_timeout(Duration::from_secs(5)) {
            Recv::Batch(batch) => assert_eq!(batch.eot, 9),
            _ => panic!("expected the flushed batch"),
        }
        for e in eps.iter_mut() {
            e.begin_drain();
        }
        for e in eps.iter_mut() {
            e.finish_drain(&mut |_| panic!("nothing should remain"));
        }
    }
}
