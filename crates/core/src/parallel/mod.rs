//! Conservative parallel discrete-event engine.
//!
//! The component graph is partitioned across `n` ranks (worker threads —
//! standing in for the MPI ranks of the original SST; see DESIGN.md).
//! Because every link has non-zero latency, an event sent at time `t` over a
//! cross-rank link cannot arrive before `t + L`, where `L` is the minimum
//! latency of the links joining the two ranks (the pairwise *lookahead*).
//!
//! # Synchronization: null messages over neighbor transports
//!
//! Ranks exchange [`Batch`](transport::Batch) messages through a pluggable
//! [`RankEndpoint`](transport::RankEndpoint) (selected by [`TransportKind`]),
//! and **only with ranks they share a link with** — there is no global
//! barrier. Each batch carries any cross-rank events plus an *earliest
//! output time* (EOT) promise: "I will never again send you an event with
//! time `< eot`". A rank tracks the latest EOT received from each neighbor;
//! the minimum over neighbors is its *earliest input time* (EIT), and every
//! local event strictly before the EIT is safe to process — no neighbor can
//! invalidate it. This is the classic Chandy–Misra–Bryant null-message
//! protocol.
//!
//! A rank's EOT to neighbor `s` is `la(me,s) + min(next local event, EIT)`:
//! any future send happens while processing an event no earlier than that
//! basis, and arrives at least the pairwise lookahead later. EOTs are
//! re-announced only when they increase — and under [`SyncMode::Adaptive`]
//! small improvements are deferred while the rank is busy (see [`sync`]) —
//! so idle neighbor pairs exchange a bounded trickle of nulls rather than a
//! barrier storm, and ranks with no common link exchange nothing at all.
//!
//! Termination: for bounded runs a rank retires once its EIT and next local
//! event both pass the bound (its final EOT promise, already sent, releases
//! its neighbors). For exhaustive runs, counters of cross-rank events sent
//! and received detect the global "all idle, nothing in flight" state.
//! These counters live in process-shared atomics under *every* transport —
//! they are the termination detector, not part of event movement.
//!
//! Determinism: event ordering uses the same `(time, class, tie)` total
//! order as the serial engine, and a rank only processes time `t` once every
//! event with time `< EIT > t` has arrived, so a parallel run produces
//! *bit-identical* statistics to the serial run of the same system — under
//! every transport and both sync modes. Integration tests assert this.

mod sync;
mod transport;

pub use sync::SyncMode;
pub use transport::TransportKind;

use crate::builder::{LazySystem, SystemBuilder};
use crate::component::EventSink;
use crate::engine::{Kernel, RunLimit, SimReport};
use crate::event::ScheduledEvent;
use crate::partition::{PartitionStrategy, PartitionSummary};
use crate::queue::EventQueue;
use crate::snapshot::{self, ComponentSnap, EventSnap, Snapshot, SNAPSHOT_SCHEMA};
use crate::stats::{Stat, StatsRegistry};
use crate::telemetry::live::{LiveMetrics, RankLive};
use crate::telemetry::{EngineProfile, RankSyncProfile, TelemetrySpec};
use crate::time::SimTime;
use serde::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sync::{globally_idle, publish_next, RankRunInfo, RankShared, SyncState};
use transport::{RankEndpoint, Recv};

/// How long an idle rank blocks on its inbox before re-checking the global
/// termination state. Progress never depends on this: any EIT advance
/// arrives as a message and wakes the receiver immediately.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Routes pushed events: local ones into a staging buffer (drained into the
/// rank's queue after each handler, since the queue is being popped at the
/// same time), remote ones into per-destination buffers flushed with the
/// next announcement round.
struct RankSink<'a> {
    my_rank: u32,
    local: &'a mut Vec<ScheduledEvent>,
    outbound: &'a mut [Vec<ScheduledEvent>],
}

impl EventSink for RankSink<'_> {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, target_rank: u32) {
        // `u32::MAX` marks engine-internal events (clock ticks), which are
        // always local.
        if target_rank == self.my_rank || target_rank == u32::MAX {
            self.local.push(ev);
        } else {
            self.outbound[target_rank as usize].push(ev);
        }
    }
}

/// Routes time-zero (and restore-time) pushes from the main thread into the
/// owning rank's queue; `u32::MAX` (engine-internal clock ticks, self
/// events) means "the rank currently being set up".
struct MultiSink<'a> {
    queues: &'a mut [EventQueue],
    current: u32,
}

impl EventSink for MultiSink<'_> {
    fn push(&mut self, ev: ScheduledEvent, target_rank: u32) {
        let r = if target_rank == u32::MAX {
            self.current
        } else {
            target_rank
        };
        self.queues[r as usize].push(ev);
    }
}

/// Swallows events pushed by `finish` handlers (which must not simulate).
struct DiscardSink;
impl EventSink for DiscardSink {
    fn push(&mut self, _ev: ScheduledEvent, _target_rank: u32) {}
}

/// Everything configurable about a parallel run. Construct with
/// `..ParallelConfig::default()` and override what matters:
///
/// ```ignore
/// let eng = ParallelEngine::with_config(builder, ParallelConfig {
///     ranks: 8,
///     transport: TransportKind::TcpLoopback,
///     ..ParallelConfig::default()
/// });
/// ```
pub struct ParallelConfig {
    pub ranks: u32,
    pub transport: TransportKind,
    pub sync: SyncMode,
    /// Partition strategy override (eager builds only; lazy systems place
    /// components via [`LazySystem::rank_of`]).
    pub partition: Option<PartitionStrategy>,
    /// A prior run's profile applied as component load weights — the
    /// measure→repartition→rerun loop (eager builds only).
    pub profile: Option<EngineProfile>,
    pub telemetry: TelemetrySpec,
    /// Live-metrics registry; ranks publish in-flight progress into it
    /// (see [`crate::telemetry::live`]). `None` (the default) keeps the
    /// rank loop at one discriminant check per iteration.
    pub live: Option<Arc<LiveMetrics>>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            ranks: 1,
            transport: TransportKind::default(),
            sync: SyncMode::default(),
            partition: None,
            profile: None,
            telemetry: TelemetrySpec::disabled(),
            live: None,
        }
    }
}

/// The parallel engine: one [`Kernel`] per rank plus the transport fabric.
///
/// The run is executed in *segments*: worker threads own the kernels and
/// queues for one conservative window `(base, bound]`, retire at the bound,
/// and hand everything back to the main thread — which may capture a
/// checkpoint (a globally quiesced cut) and launch the next segment. An
/// uninterrupted run is simply one segment to the limit. The transport
/// fabric is built fresh per segment and fully drained at its end, so
/// checkpoints never race in-flight wire traffic.
pub struct ParallelEngine {
    kernels: Vec<Kernel>,
    /// Per-rank pending-event queues; persist across segments.
    queues: Vec<EventQueue>,
    started: bool,
    /// All queued events are strictly later than this (the previous
    /// segment's bound, or the restored snapshot's instant); seeds each
    /// segment's initial EIT promises.
    base: SimTime,
    /// Per-rank sync counters accumulated across segments.
    infos: Vec<RankRunInfo>,
    lookahead: SimTime,
    pair_la: Vec<Vec<Option<SimTime>>>,
    n_ranks: u32,
    transport: TransportKind,
    sync: SyncMode,
    spec: TelemetrySpec,
    partition: PartitionSummary,
    live: Option<Arc<LiveMetrics>>,
}

impl ParallelEngine {
    /// Partition the system over `n_ranks` ranks with the default transport
    /// and sync mode. Panics if `n_ranks == 0` or exceeds the component
    /// count. Systems with no cross-rank links use an unbounded lookahead
    /// (the ranks are independent).
    pub fn new(builder: SystemBuilder, n_ranks: u32) -> ParallelEngine {
        Self::with_config(
            builder,
            ParallelConfig {
                ranks: n_ranks,
                ..ParallelConfig::default()
            },
        )
    }

    /// Partition with telemetry configured by `spec`. Tracing buffers per
    /// rank and flushes in rank order after the join (deterministic output);
    /// stats sampling is serial-only and ignored here.
    pub fn with_telemetry(
        builder: SystemBuilder,
        n_ranks: u32,
        spec: TelemetrySpec,
    ) -> ParallelEngine {
        Self::with_config(
            builder,
            ParallelConfig {
                ranks: n_ranks,
                telemetry: spec,
                ..ParallelConfig::default()
            },
        )
    }

    /// Build with an explicit [`PartitionStrategy`], optionally applying a
    /// prior run's [`EngineProfile`] as component load weights first — the
    /// whole measure→repartition→rerun loop in one call.
    pub fn with_partition(
        builder: SystemBuilder,
        n_ranks: u32,
        strategy: PartitionStrategy,
        profile: Option<&EngineProfile>,
        spec: TelemetrySpec,
    ) -> ParallelEngine {
        Self::with_config(
            builder,
            ParallelConfig {
                ranks: n_ranks,
                partition: Some(strategy),
                profile: profile.cloned(),
                telemetry: spec,
                ..ParallelConfig::default()
            },
        )
    }

    /// The fully general eager entry point.
    pub fn with_config(mut builder: SystemBuilder, cfg: ParallelConfig) -> ParallelEngine {
        assert!(cfg.ranks > 0, "need at least one rank");
        check_rank_count(cfg.ranks, builder.component_count());
        if let Some(strategy) = cfg.partition {
            builder.partition_strategy(strategy);
        }
        if let Some(p) = &cfg.profile {
            builder.apply_profile_weights(p);
        }
        let ranks = builder.resolve_ranks(cfg.ranks);
        let lookahead = builder.lookahead(&ranks).unwrap_or(SimTime::MAX);
        let pair_la = builder.pairwise_lookahead(&ranks, cfg.ranks);
        let partition = builder.summary_for(&ranks, cfg.ranks);
        let names: Arc<Vec<String>> = if cfg.telemetry.is_enabled() {
            Arc::new(builder.comps.iter().map(|c| c.name.clone()).collect())
        } else {
            Arc::new(Vec::new())
        };
        let kernels = Kernel::build_all(builder, &ranks, cfg.ranks);
        Self::assemble(kernels, names, lookahead, pair_la, partition, cfg)
    }

    /// Build from a [`LazySystem`] without ever materializing the whole
    /// graph: components stream one at a time into their owning rank's
    /// dense slot table, links are streamed twice (once for lookahead and
    /// partition metrics, once for wiring), and peak memory is the per-rank
    /// slot tables — never an eager `Vec` of boxed components plus a link
    /// list on the side.
    ///
    /// Placement comes from [`LazySystem::rank_of`]; `cfg.partition` and
    /// `cfg.profile` are ignored (there is no global graph to repartition).
    pub fn lazy(sys: &dyn LazySystem, cfg: ParallelConfig) -> ParallelEngine {
        assert!(cfg.ranks > 0, "need at least one rank");
        let n = sys.component_count();
        check_rank_count(cfg.ranks, n as usize);
        let ranks: Vec<u32> = (0..n)
            .map(|i| {
                let r = sys.rank_of(i, cfg.ranks);
                assert!(
                    r < cfg.ranks,
                    "LazySystem::rank_of({i}) returned rank {r}, valid ranks are 0..{}",
                    cfg.ranks
                );
                r
            })
            .collect();
        let (lookahead, pair_la, partition) =
            crate::builder::lazy_partition_metrics(sys, &ranks, cfg.ranks);
        let lookahead = lookahead.unwrap_or(SimTime::MAX);
        let names: Arc<Vec<String>> = if cfg.telemetry.is_enabled() {
            Arc::new((0..n).map(|i| sys.component_name(i)).collect())
        } else {
            Arc::new(Vec::new())
        };
        let kernels = Kernel::build_all_lazy(sys, &ranks, cfg.ranks);
        Self::assemble(kernels, names, lookahead, pair_la, partition, cfg)
    }

    /// Shared tail of every constructor: telemetry attachment and field
    /// assembly.
    fn assemble(
        mut kernels: Vec<Kernel>,
        names: Arc<Vec<String>>,
        lookahead: SimTime,
        pair_la: Vec<Vec<Option<SimTime>>>,
        partition: PartitionSummary,
        cfg: ParallelConfig,
    ) -> ParallelEngine {
        if cfg.telemetry.is_enabled() {
            for k in &mut kernels {
                k.attach_telemetry(&cfg.telemetry, names.clone(), true);
            }
        }
        let queues = (0..cfg.ranks).map(|_| EventQueue::new()).collect();
        let infos = (0..cfg.ranks).map(|_| RankRunInfo::default()).collect();
        ParallelEngine {
            kernels,
            queues,
            started: false,
            base: SimTime::ZERO,
            infos,
            lookahead,
            pair_la,
            n_ranks: cfg.ranks,
            transport: cfg.transport,
            sync: cfg.sync,
            spec: cfg.telemetry,
            partition,
            live: cfg.live,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The transport backend this engine will run on.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The epoch synchronization mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    /// The partition this engine was built on: strategy, cut links, weighted
    /// cut, surviving lookahead, and per-rank loads.
    pub fn partition_summary(&self) -> &PartitionSummary {
        &self.partition
    }

    /// The conservative lookahead window (minimum over all rank pairs).
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Time-zero setup on the main thread: run every rank's `setup`
    /// handlers and start its clocks, routing pushes straight into the
    /// owning rank's queue (no transport is needed before threads exist).
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for rank in 0..self.n_ranks as usize {
            let mut sink = MultiSink {
                queues: &mut self.queues,
                current: rank as u32,
            };
            self.kernels[rank].setup_all(&mut sink);
            self.kernels[rank].start_clocks(&mut sink);
        }
    }

    /// Earliest pending event time across all rank queues.
    fn next_time(&self) -> Option<SimTime> {
        self.queues.iter().filter_map(|q| q.next_time()).min()
    }

    /// Run one conservative segment: every event with time `<= bound` is
    /// delivered, after which the system is globally quiescent at the bound
    /// (kernels and queues are back in `self`, the transport fully drained
    /// and torn down).
    fn run_segment(&mut self, bound: SimTime) {
        let n = self.n_ranks as usize;
        let transport_live = self
            .live
            .as_ref()
            .map(|m| m.transport(&self.transport.to_string()));
        let endpoints =
            transport::connect(self.transport, self.n_ranks, &self.pair_la, transport_live);
        // Start at 0, not MAX: "idle" must be a claim a rank has actually
        // made, or a fast-starting rank could observe peers that have not
        // yet published their first event time and declare the whole run
        // finished before it begins.
        let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let events_sent = AtomicU64::new(0);
        let events_recvd = AtomicU64::new(0);
        let all_done = AtomicBool::new(false);
        let base = self.base;
        let mode = self.sync;
        let global_la = self.lookahead.as_ps();

        type RankResult = (Kernel, EventQueue, Box<dyn RankEndpoint>, RankRunInfo);
        let mut results: Vec<Option<RankResult>> = (0..n).map(|_| None).collect();

        let kernels: Vec<Kernel> = self.kernels.drain(..).collect();
        let queues: Vec<EventQueue> = self.queues.drain(..).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, ((kernel, queue), ep)) in
                kernels.into_iter().zip(queues).zip(endpoints).enumerate()
            {
                let shared = RankShared {
                    next_times: &next_times,
                    events_sent: &events_sent,
                    events_recvd: &events_recvd,
                    all_done: &all_done,
                };
                let la_row = self.pair_la[rank].clone();
                let live = self.live.as_ref().map(|m| m.rank(rank as u32));
                handles.push(scope.spawn(move || {
                    run_rank(
                        kernel,
                        queue,
                        rank as u32,
                        bound,
                        base,
                        la_row,
                        mode,
                        global_la,
                        ep,
                        shared,
                        live,
                    )
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });

        // Two-phase transport drain: every endpoint announces "no more
        // frames" first, then each collects what is still in flight.
        // Interleaving the phases per endpoint would deadlock a wire
        // transport: finishing rank 0 would block on rank 1's FIN while
        // rank 1's FIN waits for its own finish call.
        for r in results.iter_mut().flatten() {
            r.2.begin_drain();
        }
        for (rank, r) in results.into_iter().enumerate() {
            let (kernel, mut queue, mut ep, info) = r.expect("missing rank result");
            // A rank retires as soon as nothing at or below the bound can
            // reach it; neighbors may still have shipped it later events.
            // Those sit in the transport — fold them into the queue so the
            // next segment (or the stitched checkpoint) sees them.
            ep.finish_drain(&mut |batch| {
                for ev in batch.events {
                    debug_assert!(ev.time > bound, "late event at or below the bound");
                    queue.push(ev);
                }
            });
            drop(ep);
            self.infos[rank].accumulate(&info);
            self.kernels.push(kernel);
            self.queues.push(queue);
        }
        if bound != SimTime::MAX {
            self.base = bound;
        }
    }

    /// Capture a stitched, sealed [`Snapshot`] across all ranks. Only valid
    /// between segments (the main thread owns kernels and queues). The
    /// document — components by name, one merged queue in total delivery
    /// order, stats by `(owner, name)` — is byte-identical to the serial
    /// engine's capture of the same instant.
    pub fn checkpoint(&mut self, origin: Option<&Value>) -> Snapshot {
        self.start();
        let mut components: Vec<ComponentSnap> = Vec::new();
        let mut clocks: Vec<bool> = Vec::new();
        let mut events = 0u64;
        let mut clock_ticks = 0u64;
        let mut time = SimTime::ZERO;
        for k in &self.kernels {
            components.extend(k.capture_components());
            let flags = k.capture_clock_flags();
            if clocks.is_empty() {
                clocks = flags;
            } else {
                // Each clock is owned by exactly one rank; everyone else
                // reports `false`, so OR stitches the global table.
                for (c, f) in clocks.iter_mut().zip(flags) {
                    *c |= f;
                }
            }
            events += k.events;
            clock_ticks += k.clock_ticks;
            time = time.max(k.now);
        }
        components.sort_by(|a, b| a.name.cmp(&b.name));

        let mut stats: Vec<Stat> = Vec::new();
        for k in &self.kernels {
            stats.extend(k.stats.checkpoint_stats());
        }
        stats.sort_by(|a, b| (&a.owner, &a.name).cmp(&(&b.owner, &b.name)));

        let mut drained: Vec<(usize, EventSnap, ScheduledEvent)> = Vec::new();
        for (rank, q) in self.queues.iter_mut().enumerate() {
            while let Some(ev) = q.pop() {
                let (snap, ev) = snapshot::encode_event(ev);
                drained.push((rank, snap, ev));
            }
        }
        // Per-rank pops are already ordered; a global sort by the full
        // event key merges them into the serial engine's delivery order.
        drained.sort_by_key(|(_, _, ev)| ev.key());
        let mut queue = Vec::with_capacity(drained.len());
        for (rank, snap, ev) in drained {
            queue.push(snap);
            self.queues[rank].push(ev);
        }

        let mut snap = Snapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            time_ps: time.as_ps(),
            seed: self.kernels[0].seed,
            events,
            clock_ticks,
            components,
            clocks,
            queue,
            stats,
            sampler: None,
            origin: origin.cloned(),
            state_hash: String::new(),
        };
        snap.seal();
        snap
    }

    /// Overwrite this (not yet started) engine's state from a snapshot of
    /// the same system — captured by either engine, at any rank count.
    /// `setup` runs first (registering stats and payload codecs), the fresh
    /// initial events are discarded, and each snapshot event is routed to
    /// its target's owning rank.
    pub fn restore(mut self, snap: &Snapshot) -> ParallelEngine {
        assert!(!self.started, "restore must precede the first run");
        self.start();
        for q in &mut self.queues {
            while q.pop().is_some() {}
        }
        let mut applied = 0;
        let mut stats_applied = 0;
        for k in &mut self.kernels {
            applied += k.restore_components(&snap.components);
            k.restore_clocks(&snap.clocks);
            stats_applied += k.stats.restore_values(&snap.stats);
            k.now = SimTime::ps(snap.time_ps);
            k.events = 0;
            k.clock_ticks = 0;
        }
        assert_eq!(
            applied,
            snap.components.len(),
            "snapshot component names do not match the rebuilt system"
        );
        assert_eq!(
            stats_applied,
            snap.stats.len(),
            "snapshot statistics do not match the rebuilt system"
        );
        // Totals live on rank 0; the report sums across ranks.
        self.kernels[0].events = snap.events;
        self.kernels[0].clock_ticks = snap.clock_ticks;
        for es in &snap.queue {
            let ev = snapshot::decode_event(es);
            let rank = (0..self.n_ranks as usize)
                .find(|&r| self.kernels[r].is_local(ev.target))
                .unwrap_or_else(|| {
                    panic!("snapshot event targets unknown component {:?}", ev.target)
                });
            self.queues[rank].push(ev);
        }
        self.base = SimTime::ps(snap.time_ps);
        self
    }

    /// Run the simulation to `limit` and report. Statistics from all ranks
    /// are merged (rank order) into one snapshot.
    pub fn run(self, limit: RunLimit) -> SimReport {
        self.run_impl(limit, None, None, &mut |_| {}, false)
    }

    /// Run like [`run`](Self::run), pausing at every `every`-aligned
    /// boundary of simulated time for a stitched checkpoint (see
    /// [`checkpoint`](Self::checkpoint)); the report carries the final
    /// state hash, which requires payload codecs for anything still queued
    /// at the end. Snapshots are identical to the serial engine's at the
    /// same instants.
    pub fn run_with_checkpoints(
        self,
        limit: RunLimit,
        every: Option<SimTime>,
        origin: Option<&Value>,
        sink: &mut dyn FnMut(Snapshot),
    ) -> SimReport {
        self.run_impl(limit, every, origin, sink, true)
    }

    fn run_impl(
        mut self,
        limit: RunLimit,
        every: Option<SimTime>,
        origin: Option<&Value>,
        sink: &mut dyn FnMut(Snapshot),
        want_hash: bool,
    ) -> SimReport {
        let t0 = std::time::Instant::now();
        self.start();
        if let Some(m) = &self.live {
            let target = match limit {
                RunLimit::Until(t) => Some(t),
                RunLimit::Exhaust => None,
            };
            m.begin_run(&format!("{}ranks", self.n_ranks), target);
        }
        let bound = limit.bound();
        if let Some(every) = every {
            assert!(every.as_ps() > 0, "checkpoint interval must be positive");
            while let Some(next_t) = self.next_time() {
                if next_t > bound {
                    break;
                }
                let target = SimTime::ps(next_t.as_ps().div_ceil(every.as_ps()) * every.as_ps());
                if target >= bound {
                    break;
                }
                self.run_segment(target);
                sink(self.checkpoint(origin));
            }
        }
        self.run_segment(bound);
        if let Some(m) = &self.live {
            m.note_finished();
        }

        // Clamp to the bound first (matching the serial engine's `step`), so
        // the final capture and the finish handlers see the same instant.
        if bound != SimTime::MAX {
            for k in &mut self.kernels {
                k.now = k.now.max(bound);
            }
        }
        let final_state_hash = want_hash.then(|| self.checkpoint(origin).state_hash);
        for k in &mut self.kernels {
            k.finish_all(&mut DiscardSink);
        }

        let mut stats = StatsRegistry::new();
        let mut events = 0u64;
        let mut clock_ticks = 0u64;
        let mut end_time = SimTime::ZERO;
        let mut rounds = 0u64;
        let mut seed = 0u64;
        let mut profile: Option<EngineProfile> = None;
        let specialized = self.kernels.iter().any(|k| k.specialized);
        for (rank, mut kernel) in self.kernels.into_iter().enumerate() {
            let info = &self.infos[rank];
            // Flushes each rank's buffered trace in rank order — the merged
            // trace file is deterministic because each rank's event order is
            // (conservative sync guarantees it).
            let (rank_profile, _series) = kernel.finish_telemetry();
            if let Some(p) = rank_profile {
                let agg = profile.get_or_insert_with(EngineProfile::default);
                agg.components.extend(p.components);
                agg.queue_depth_hwm = agg.queue_depth_hwm.max(p.queue_depth_hwm);
                agg.delivery_batches += p.delivery_batches;
                agg.max_batch_events = agg.max_batch_events.max(p.max_batch_events);
                agg.ranks.push(RankSyncProfile {
                    rank: rank as u32,
                    sync_rounds: info.rounds,
                    batches_sent: info.batches_sent,
                    null_batches_sent: info.null_batches_sent,
                    events_sent: info.events_shipped,
                    barriers_skipped: info.barriers_skipped,
                    epochs_widened: info.epochs_widened,
                    stall_rounds: info.stall_rounds,
                    stall_ns: info.stall_ns,
                });
            }
            events += kernel.events;
            clock_ticks += kernel.clock_ticks;
            end_time = end_time.max(kernel.now);
            seed = kernel.seed;
            stats.absorb(kernel.stats);
            rounds = rounds.max(info.rounds);
        }
        if let RunLimit::Until(t) = limit {
            end_time = end_time.max(t);
        }
        let report = SimReport {
            end_time,
            events,
            clock_ticks,
            wall_seconds: t0.elapsed().as_secs_f64(),
            ranks: self.n_ranks,
            epochs: rounds,
            stats: stats.snapshot(),
            profile,
            series: None,
            final_state_hash,
            queue_backend: Some("indexed".to_string()),
            specialized,
        };
        self.spec.collect_run(
            seed,
            report.events,
            report.clock_ticks,
            report.wall_seconds,
            report.profile.as_ref(),
            None,
        );
        report
    }
}

/// Idle ranks are a configuration error, not a silent inefficiency: a rank
/// with no components still joins every synchronization round. (An empty
/// system on one rank is allowed — it runs zero events serially.)
fn check_rank_count(n_ranks: u32, n_comps: usize) {
    assert!(
        (n_ranks as usize) <= n_comps.max(1),
        "cannot split {n_comps} component(s) across {n_ranks} ranks: every rank \
         needs at least one component (idle ranks only add synchronization \
         traffic) — lower the rank count (--ranks) or grow the system"
    );
}

/// Deliver one event through a [`RankSink`] and fold any locally staged
/// sends straight back into the queue, so follow-up straggler checks see
/// them. Shared by the batch loop's main and straggler paths.
#[inline]
fn deliver_one(
    kernel: &mut Kernel,
    ev: ScheduledEvent,
    my_rank: u32,
    staging: &mut Vec<ScheduledEvent>,
    outbound: &mut [Vec<ScheduledEvent>],
    queue: &mut EventQueue,
) {
    let mut sink = RankSink {
        my_rank,
        local: staging,
        outbound,
    };
    kernel.deliver(ev, &mut sink);
    for ev in staging.drain(..) {
        queue.push(ev);
    }
}

/// Run one rank over one conservative segment `(base, bound]`. The kernel
/// and queue arrive already set up (time-zero work happens on the main
/// thread); the rank delivers every local event with time `<= bound`, then
/// retires and hands everything — including its endpoint, which may still
/// hold post-bound events from neighbors — back to the main thread. No
/// finalization happens here: `finish` handlers, the `Until` time clamp,
/// and telemetry teardown run on the main thread after the *last* segment,
/// so an intermediate capture sees `now` at the last delivered event.
#[allow(clippy::too_many_arguments)]
fn run_rank(
    mut kernel: Kernel,
    mut queue: EventQueue,
    my_rank: u32,
    bound: SimTime,
    base: SimTime,
    la_row: Vec<Option<SimTime>>,
    mode: SyncMode,
    global_la: u64,
    mut ep: Box<dyn RankEndpoint>,
    shared: RankShared<'_>,
    live: Option<Arc<RankLive>>,
) -> (Kernel, EventQueue, Box<dyn RankEndpoint>, RankRunInfo) {
    let n = la_row.len();
    let mut sync = SyncState::new(my_rank, &la_row, base.as_ps(), mode, global_la);
    // All working buffers come from (and return to) the rank's pool, so
    // steady-state exchange and batching allocate nothing: `staging` and
    // `batch` live for the whole run, `outbound` vectors cycle through the
    // pool as they are shipped (the receiver's `absorb` returns each spent
    // `Batch.events` vector to *its* pool).
    let mut staging: Vec<ScheduledEvent> = sync.pool.get();
    let mut batch: Vec<ScheduledEvent> = sync.pool.get();
    let mut outbound: Vec<Vec<ScheduledEvent>> = (0..n).map(|_| sync.pool.get()).collect();
    let bound_ps = bound.as_ps();
    let profiling = kernel.tel.as_ref().is_some_and(|t| t.profiler.is_some());
    let mut stall_rounds = 0u64;
    let mut stall_ns = 0u64;

    // Announce the first EOT promises and publish the earliest local time
    // before touching the queue; flushing first matters because once
    // `next_times` says MAX and the sent/received counters balance, a
    // checker may declare global termination.
    sync.flush_and_announce(&mut outbound, &queue, &shared, ep.as_mut(), true);
    publish_next(&queue, my_rank, &shared);

    loop {
        // 1. Drain whatever neighbors have deposited since last look.
        while let Some(incoming) = ep.try_recv() {
            sync.absorb(incoming, &mut queue, &shared);
        }

        // 2. Process the safe window: strictly before the EIT (a neighbor
        //    may still send events *at* the EIT, and same-time events must
        //    enter the queue before tie-break ordering picks among them),
        //    and never past the bound (`Until` is inclusive, matching the
        //    serial engine). Deliveries are batched per time instant, same
        //    as the serial engine's step loop.
        let safe = sync.eit_min().min(bound_ps.saturating_add(1));
        let mut worked = false;
        let mut delivered = 0u64;
        if safe > 0 {
            let window = SimTime::ps(safe - 1);
            while queue.pop_time_run(window, &mut batch) != 0 {
                let nb = batch.len() as u64;
                delivered += nb;
                for ev in batch.drain(..) {
                    while let Some(s) = queue.pop_if_key_before(ev.key()) {
                        deliver_one(
                            &mut kernel,
                            s,
                            my_rank,
                            &mut staging,
                            &mut outbound,
                            &mut queue,
                        );
                    }
                    deliver_one(
                        &mut kernel,
                        ev,
                        my_rank,
                        &mut staging,
                        &mut outbound,
                        &mut queue,
                    );
                }
                if profiling {
                    if let Some(p) = kernel.tel.as_deref_mut().and_then(|t| t.profiler.as_mut()) {
                        p.note_batch(nb);
                        p.note_depth(queue.len() as u64);
                    }
                }
                worked = true;
            }
        }

        // 3. Decide *now* whether this iteration retires the rank: nothing
        //    at or below the bound can ever reach it again. The flush below
        //    must know, because the final EOT promises (which release the
        //    neighbors) would otherwise be deferred by null coalescing and
        //    never sent.
        let next_local = queue.next_time().map_or(u64::MAX, |t| t.as_ps());
        let retiring = bound_ps != u64::MAX && sync.eit_min() > bound_ps && next_local > bound_ps;

        //    Publish in-flight progress — one discriminant check per loop
        //    iteration when live metrics are detached, relaxed atomic
        //    stores when attached.
        if let Some(l) = &live {
            l.batch(kernel.now, delivered, queue.len());
            l.sync_counters(
                stall_rounds,
                sync.null_batches_sent,
                sync.batches_sent,
                sync.events_shipped,
            );
        }

        //    Ship events and improved EOT promises to neighbors, *then*
        //    publish our new earliest time: a rank must never look idle to
        //    the termination check while it holds unsent events (the send
        //    bumps `events_sent`, which keeps the counters unbalanced until
        //    the receiver absorbs them). Pure nulls are deferred while the
        //    rank is working — it always announces before blocking (below)
        //    or retiring, so no neighbor starves.
        sync.flush_and_announce(
            &mut outbound,
            &queue,
            &shared,
            ep.as_mut(),
            !worked || retiring,
        );
        publish_next(&queue, my_rank, &shared);

        // 4. Retire. The promises just sent release the neighbors too.
        if retiring {
            break;
        }

        // 5. Exhaustive termination: all ranks idle, nothing in flight.
        //    (Also ends bounded runs early when the whole system drains.)
        if shared.all_done.load(Ordering::SeqCst) {
            break;
        }
        if next_local == u64::MAX && globally_idle(&shared) {
            shared.all_done.store(true, Ordering::SeqCst);
            break;
        }

        // 6. Nothing processable: block until a neighbor advances our EIT
        //    (or the idle poll re-checks termination).
        if !worked {
            stall_rounds += 1;
            let t_wait = profiling.then(std::time::Instant::now);
            let res = ep.recv_timeout(IDLE_POLL);
            if let Some(t) = t_wait {
                stall_ns += t.elapsed().as_nanos() as u64;
            }
            match res {
                Recv::Batch(incoming) => sync.absorb(incoming, &mut queue, &shared),
                Recv::Timeout => {}
                Recv::Closed => break,
            }
        }
    }

    if let Some(l) = &live {
        l.batch(kernel.now, 0, queue.len());
        l.sync_counters(
            stall_rounds,
            sync.null_batches_sent,
            sync.batches_sent,
            sync.events_shipped,
        );
        l.retire();
    }
    let info = RankRunInfo {
        rounds: sync.rounds,
        batches_sent: sync.batches_sent,
        null_batches_sent: sync.null_batches_sent,
        events_shipped: sync.events_shipped,
        barriers_skipped: sync.barriers_skipped,
        epochs_widened: sync.epochs_widened,
        stall_rounds,
        stall_ns,
    };
    (kernel, queue, ep, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, SimCtx};
    use crate::event::{downcast, PayloadSlot, PortId};
    use crate::stats::StatId;

    #[derive(Debug)]
    struct Token(u64);

    /// Forwards a token around a ring `laps` times, counting visits.
    struct RingNode {
        laps: u64,
        start: bool,
        visits: Option<StatId>,
    }
    impl RingNode {
        const IN: PortId = PortId(0);
        const OUT: PortId = PortId(1);
    }
    impl Component for RingNode {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.visits = Some(ctx.stat_counter("visits"));
            if self.start {
                ctx.send(Self::OUT, Token(0));
            }
        }
        fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            assert_eq!(port, Self::IN);
            let tok = downcast::<Token>(payload);
            ctx.add_stat(self.visits.unwrap(), 1);
            if tok.0 < self.laps {
                ctx.send(Self::OUT, Token(tok.0 + if self.start { 1 } else { 0 }));
            }
        }
    }

    fn build_ring(nodes: u32, laps: u64) -> SystemBuilder {
        let mut b = SystemBuilder::new();
        let ids: Vec<_> = (0..nodes)
            .map(|i| {
                b.add(
                    format!("node{i}"),
                    RingNode {
                        laps,
                        start: i == 0,
                        visits: None,
                    },
                )
            })
            .collect();
        for i in 0..nodes as usize {
            let next = (i + 1) % nodes as usize;
            b.link(
                (ids[i], RingNode::OUT),
                (ids[next], RingNode::IN),
                SimTime::ns(7),
            );
        }
        b
    }

    #[test]
    fn ring_parallel_matches_serial() {
        let serial = crate::engine::Engine::new(build_ring(8, 10)).run(RunLimit::Exhaust);
        for ranks in [1u32, 2, 3, 4] {
            let par = ParallelEngine::new(build_ring(8, 10), ranks).run(RunLimit::Exhaust);
            assert_eq!(par.events, serial.events, "ranks={ranks}");
            assert_eq!(par.end_time, serial.end_time, "ranks={ranks}");
            for i in 0..8 {
                let name = format!("node{i}");
                assert_eq!(
                    par.stats.counter(&name, "visits"),
                    serial.stats.counter(&name, "visits"),
                    "ranks={ranks} node={i}"
                );
            }
        }
    }

    #[test]
    fn every_strategy_matches_serial_on_the_ring() {
        let serial = crate::engine::Engine::new(build_ring(8, 10)).run(RunLimit::Exhaust);
        for &strategy in PartitionStrategy::ALL {
            for ranks in [2u32, 3] {
                let engine = ParallelEngine::with_partition(
                    build_ring(8, 10),
                    ranks,
                    strategy,
                    None,
                    TelemetrySpec::disabled(),
                );
                let summary = engine.partition_summary().clone();
                assert_eq!(summary.strategy, strategy.to_string());
                assert_eq!(summary.n_ranks, ranks);
                assert_eq!(summary.assignments.len(), 8);
                let par = engine.run(RunLimit::Exhaust);
                assert_eq!(par.events, serial.events, "{strategy} ranks={ranks}");
                assert_eq!(par.end_time, serial.end_time, "{strategy} ranks={ranks}");
                for i in 0..8 {
                    let name = format!("node{i}");
                    assert_eq!(
                        par.stats.counter(&name, "visits"),
                        serial.stats.counter(&name, "visits"),
                        "{strategy} ranks={ranks} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_epoch_sync_matches_serial() {
        let serial = crate::engine::Engine::new(build_ring(8, 10)).run(RunLimit::Exhaust);
        for ranks in [2u32, 4] {
            let par = ParallelEngine::with_config(
                build_ring(8, 10),
                ParallelConfig {
                    ranks,
                    sync: SyncMode::FixedEpoch,
                    ..ParallelConfig::default()
                },
            )
            .run(RunLimit::Exhaust);
            assert_eq!(par.events, serial.events, "ranks={ranks}");
            assert_eq!(par.end_time, serial.end_time, "ranks={ranks}");
        }
    }

    #[test]
    fn run_until_parallel_matches_serial() {
        let limit = RunLimit::Until(SimTime::ns(200));
        let serial = crate::engine::Engine::new(build_ring(6, 1_000_000)).run(limit);
        let par = ParallelEngine::new(build_ring(6, 1_000_000), 3).run(limit);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
    }

    #[test]
    fn independent_ranks_no_cross_links() {
        // Two disjoint rings: no rank pair shares a link, so no messages
        // flow at all; both rings must still finish.
        let mut b = SystemBuilder::new();
        for r in 0..2 {
            let ids: Vec<_> = (0..4)
                .map(|i| {
                    b.add_on_rank(
                        format!("r{r}n{i}"),
                        RingNode {
                            laps: 5,
                            start: i == 0,
                            visits: None,
                        },
                        r,
                    )
                })
                .collect();
            for i in 0..4usize {
                b.link(
                    (ids[i], RingNode::OUT),
                    (ids[(i + 1) % 4], RingNode::IN),
                    SimTime::ns(3),
                );
            }
        }
        let report = ParallelEngine::new(b, 2).run(RunLimit::Exhaust);
        assert_eq!(report.stats.sum_counters("visits"), 2 * (5 * 4 + 1));
    }

    #[test]
    fn single_rank_parallel_equals_serial() {
        let serial = crate::engine::Engine::new(build_ring(4, 3)).run(RunLimit::Exhaust);
        let par = ParallelEngine::new(build_ring(4, 3), 1).run(RunLimit::Exhaust);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
    }

    #[test]
    #[should_panic(expected = "every rank needs at least one component")]
    fn more_ranks_than_components_is_a_loud_error() {
        ParallelEngine::new(build_ring(4, 3), 5);
    }

    #[test]
    fn asymmetric_latencies_use_pairwise_lookahead() {
        // A chain 0 -- 1 -- 2 with very different latencies per pair: the
        // tight pair must not be throttled to the loose pair's lookahead,
        // and results must still match the serial run.
        fn build() -> SystemBuilder {
            let mut b = SystemBuilder::new();
            let a = b.add_on_rank(
                "a",
                RingNode {
                    laps: 6,
                    start: true,
                    visits: None,
                },
                0,
            );
            let c = b.add_on_rank(
                "c",
                RingNode {
                    laps: 6,
                    start: false,
                    visits: None,
                },
                1,
            );
            let d = b.add_on_rank(
                "d",
                RingNode {
                    laps: 6,
                    start: false,
                    visits: None,
                },
                2,
            );
            b.link((a, RingNode::OUT), (c, RingNode::IN), SimTime::ns(2));
            b.link((c, RingNode::OUT), (d, RingNode::IN), SimTime::ns(40));
            b.link((d, RingNode::OUT), (a, RingNode::IN), SimTime::ns(3));
            b
        }
        let serial = crate::engine::Engine::new(build()).run(RunLimit::Exhaust);
        let par = ParallelEngine::new(build(), 3).run(RunLimit::Exhaust);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
        for name in ["a", "c", "d"] {
            assert_eq!(
                par.stats.counter(name, "visits"),
                serial.stats.counter(name, "visits"),
                "node={name}"
            );
        }
    }

    #[derive(Debug, serde::Serialize, serde::Deserialize)]
    struct SnapTok(u64);

    /// RingNode with a registered payload codec, for checkpoint tests and
    /// the TCP transport (whose wire format uses the codec registry).
    struct SnapRing {
        laps: u64,
        start: bool,
        visits: Option<StatId>,
    }
    impl Component for SnapRing {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            crate::snapshot::register_payload::<SnapTok>("parallel.test-tok");
            self.visits = Some(ctx.stat_counter("visits"));
            if self.start {
                ctx.send(RingNode::OUT, SnapTok(0));
            }
        }
        fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            assert_eq!(port, RingNode::IN);
            let tok = downcast::<SnapTok>(payload);
            ctx.add_stat(self.visits.unwrap(), 1);
            if tok.0 < self.laps {
                ctx.send(
                    RingNode::OUT,
                    SnapTok(tok.0 + if self.start { 1 } else { 0 }),
                );
            }
        }
    }

    fn build_snap_ring(nodes: u32, laps: u64) -> SystemBuilder {
        let mut b = SystemBuilder::new();
        let ids: Vec<_> = (0..nodes)
            .map(|i| {
                b.add(
                    format!("node{i}"),
                    SnapRing {
                        laps,
                        start: i == 0,
                        visits: None,
                    },
                )
            })
            .collect();
        for i in 0..nodes as usize {
            let next = (i + 1) % nodes as usize;
            b.link(
                (ids[i], RingNode::OUT),
                (ids[next], RingNode::IN),
                SimTime::ns(7),
            );
        }
        b
    }

    #[test]
    fn tcp_transport_matches_serial_on_the_ring() {
        let serial = crate::engine::Engine::new(build_snap_ring(8, 10)).run(RunLimit::Exhaust);
        for ranks in [2u32, 3] {
            for sync in [SyncMode::Adaptive, SyncMode::FixedEpoch] {
                let par = ParallelEngine::with_config(
                    build_snap_ring(8, 10),
                    ParallelConfig {
                        ranks,
                        transport: TransportKind::TcpLoopback,
                        sync,
                        ..ParallelConfig::default()
                    },
                )
                .run(RunLimit::Exhaust);
                assert_eq!(par.events, serial.events, "ranks={ranks} sync={sync}");
                assert_eq!(par.end_time, serial.end_time, "ranks={ranks} sync={sync}");
                for i in 0..8 {
                    let name = format!("node{i}");
                    assert_eq!(
                        par.stats.counter(&name, "visits"),
                        serial.stats.counter(&name, "visits"),
                        "ranks={ranks} sync={sync} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_checkpoints_match_serial_byte_for_byte() {
        let every = Some(SimTime::ns(40));
        let mut serial_snaps = Vec::new();
        let serial = crate::engine::Engine::new(build_snap_ring(8, 10)).run_with_checkpoints(
            RunLimit::Exhaust,
            every,
            None,
            &mut |s| serial_snaps.push(s),
        );
        assert!(!serial_snaps.is_empty());
        for ranks in [1u32, 2, 3] {
            let mut par_snaps = Vec::new();
            let par = ParallelEngine::new(build_snap_ring(8, 10), ranks).run_with_checkpoints(
                RunLimit::Exhaust,
                every,
                None,
                &mut |s| par_snaps.push(s),
            );
            assert_eq!(
                par.final_state_hash, serial.final_state_hash,
                "ranks={ranks}"
            );
            assert_eq!(par_snaps.len(), serial_snaps.len(), "ranks={ranks}");
            for (p, s) in par_snaps.iter().zip(&serial_snaps) {
                // Not just the hash: the whole canonical document must match.
                assert_eq!(
                    p.to_json_pretty(),
                    s.to_json_pretty(),
                    "ranks={ranks} t={}",
                    s.time_ps
                );
            }
        }
    }

    #[test]
    fn tcp_checkpoints_match_shared_mem_byte_for_byte() {
        let every = Some(SimTime::ns(40));
        let mut shm_snaps = Vec::new();
        let shm = ParallelEngine::new(build_snap_ring(8, 10), 2).run_with_checkpoints(
            RunLimit::Exhaust,
            every,
            None,
            &mut |s| shm_snaps.push(s),
        );
        let mut tcp_snaps = Vec::new();
        let tcp = ParallelEngine::with_config(
            build_snap_ring(8, 10),
            ParallelConfig {
                ranks: 2,
                transport: TransportKind::TcpLoopback,
                ..ParallelConfig::default()
            },
        )
        .run_with_checkpoints(RunLimit::Exhaust, every, None, &mut |s| tcp_snaps.push(s));
        assert_eq!(tcp.final_state_hash, shm.final_state_hash);
        assert_eq!(tcp_snaps.len(), shm_snaps.len());
        for (t, s) in tcp_snaps.iter().zip(&shm_snaps) {
            assert_eq!(t.to_json_pretty(), s.to_json_pretty(), "t={}", s.time_ps);
        }
    }

    #[test]
    fn parallel_restore_from_serial_snapshot_is_bit_identical() {
        let plain = crate::engine::Engine::new(build_snap_ring(8, 10)).run(RunLimit::Exhaust);
        let mut snaps = Vec::new();
        crate::engine::Engine::new(build_snap_ring(8, 10)).run_with_checkpoints(
            RunLimit::Exhaust,
            Some(SimTime::ns(100)),
            None,
            &mut |s| snaps.push(s),
        );
        let mid = &snaps[snaps.len() / 2];
        for ranks in [2u32, 3] {
            let restored = ParallelEngine::new(build_snap_ring(8, 10), ranks)
                .restore(mid)
                .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
            assert_eq!(restored.events, plain.events, "ranks={ranks}");
            assert_eq!(restored.end_time, plain.end_time, "ranks={ranks}");
            for i in 0..8 {
                let name = format!("node{i}");
                assert_eq!(
                    restored.stats.counter(&name, "visits"),
                    plain.stats.counter(&name, "visits"),
                    "ranks={ranks} node={i}"
                );
            }
        }
    }

    #[test]
    fn bounded_run_with_idle_rank_terminates() {
        // Rank 1 owns a node that goes idle quickly while rank 0 keeps
        // running to the bound; the EOT creep must still retire both ranks.
        let mut b = SystemBuilder::new();
        let busy = b.add_on_rank(
            "busy",
            RingNode {
                laps: 1_000_000,
                start: true,
                visits: None,
            },
            0,
        );
        let quiet = b.add_on_rank(
            "quiet",
            RingNode {
                laps: 1_000_000,
                start: false,
                visits: None,
            },
            1,
        );
        b.link((busy, RingNode::OUT), (quiet, RingNode::IN), SimTime::ns(5));
        b.link((quiet, RingNode::OUT), (busy, RingNode::IN), SimTime::ns(5));
        let limit = RunLimit::Until(SimTime::ns(300));
        let serial = crate::engine::Engine::new({
            let mut b2 = SystemBuilder::new();
            let x = b2.add(
                "busy",
                RingNode {
                    laps: 1_000_000,
                    start: true,
                    visits: None,
                },
            );
            let y = b2.add(
                "quiet",
                RingNode {
                    laps: 1_000_000,
                    start: false,
                    visits: None,
                },
            );
            b2.link((x, RingNode::OUT), (y, RingNode::IN), SimTime::ns(5));
            b2.link((y, RingNode::OUT), (x, RingNode::IN), SimTime::ns(5));
            b2
        })
        .run(limit);
        let par = ParallelEngine::new(b, 2).run(limit);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
    }

    /// A lazily generated ring, for streaming-construction equivalence.
    struct LazyRing {
        nodes: u32,
        laps: u64,
    }
    impl LazySystem for LazyRing {
        fn component_count(&self) -> u32 {
            self.nodes
        }
        fn component_name(&self, i: u32) -> String {
            format!("node{i}")
        }
        fn create(&self, i: u32) -> Box<dyn Component> {
            Box::new(RingNode {
                laps: self.laps,
                start: i == 0,
                visits: None,
            })
        }
        fn for_each_link(&self, f: &mut dyn FnMut(crate::builder::LazyLink)) {
            for i in 0..self.nodes {
                let next = (i + 1) % self.nodes;
                f(crate::builder::LazyLink {
                    a: (crate::event::ComponentId(i), RingNode::OUT),
                    b: (crate::event::ComponentId(next), RingNode::IN),
                    latency: SimTime::ns(7),
                });
            }
        }
    }

    #[test]
    fn lazy_build_matches_materialized_and_serial() {
        let sys = LazyRing { nodes: 8, laps: 10 };
        let serial =
            crate::engine::Engine::new(SystemBuilder::materialize(&sys)).run(RunLimit::Exhaust);
        for ranks in [1u32, 2, 4] {
            let par = ParallelEngine::lazy(
                &sys,
                ParallelConfig {
                    ranks,
                    ..ParallelConfig::default()
                },
            )
            .run(RunLimit::Exhaust);
            assert_eq!(par.events, serial.events, "ranks={ranks}");
            assert_eq!(par.end_time, serial.end_time, "ranks={ranks}");
            for i in 0..8 {
                let name = format!("node{i}");
                assert_eq!(
                    par.stats.counter(&name, "visits"),
                    serial.stats.counter(&name, "visits"),
                    "ranks={ranks} node={i}"
                );
            }
        }
    }

    #[test]
    fn lazy_partition_metrics_match_engine_accessors() {
        let sys = LazyRing { nodes: 8, laps: 10 };
        let eng = ParallelEngine::lazy(
            &sys,
            ParallelConfig {
                ranks: 4,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(eng.lookahead(), SimTime::ns(7));
        let s = eng.partition_summary();
        assert_eq!(s.components, 8);
        assert_eq!(s.total_links, 8);
        assert_eq!(s.rank_components, vec![2, 2, 2, 2]);
        // Block placement of a ring cuts one link per rank boundary (the
        // wrap-around closes the fourth).
        assert_eq!(s.cut_links, 4);
    }
}
