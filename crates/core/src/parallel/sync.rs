//! Per-rank synchronization state for the null-message protocol, and the
//! epoch policy ([`SyncMode`]) that decides *when* EOT promises go out.
//!
//! # Adaptive epochs vs fixed epochs
//!
//! The classic conservative baseline re-announces every EOT improvement to
//! every neighbor, with the *global* minimum lookahead as the promise
//! basis — effectively a fixed-width epoch everyone marches through in
//! lock-step. [`SyncMode::FixedEpoch`] implements exactly that, as the
//! measurable control.
//!
//! [`SyncMode::Adaptive`] layers three optimizations on the same protocol,
//! none of which weakens a promise (so results stay bit-identical):
//!
//! * **per-pair lookahead** — each neighbor's promise uses the minimum
//!   latency of the links *that pair* shares, so a tightly coupled pair no
//!   longer throttles a loosely coupled one (its epochs are wider);
//! * **barrier skipping** — pure-null announcements are deferred while the
//!   rank is making local progress; a skipped announcement is counted in
//!   `barriers_skipped`. Liveness: the rank always announces before it
//!   blocks or retires, so no neighbor waits on a promise that never comes;
//! * **epoch widening** — an EOT jump of at least the pairwise lookahead is
//!   announced immediately even mid-work (it widens the neighbor's next
//!   safe window by a whole epoch or more), counted in `epochs_widened`.
//!
//! Both modes batch each round's announcements through one
//! [`RankEndpoint::flush`](super::transport::RankEndpoint::flush) call, so
//! a wire-backed transport pays one syscall per peer per round, not one per
//! announcement.

use super::transport::{Batch, RankEndpoint};
use crate::event::{EventBufPool, ScheduledEvent};
use crate::queue::EventQueue;
use crate::time::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Epoch synchronization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Conservative baseline: global-minimum lookahead for every promise,
    /// every EOT improvement announced immediately.
    FixedEpoch,
    /// Per-pair lookahead, deferred nulls, immediate wide jumps (the
    /// default). Bit-identical results, measurably less sync traffic.
    #[default]
    Adaptive,
}

impl SyncMode {
    pub const ALL: &'static [SyncMode] = &[SyncMode::FixedEpoch, SyncMode::Adaptive];
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncMode::FixedEpoch => "fixed",
            SyncMode::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for SyncMode {
    type Err = String;
    fn from_str(s: &str) -> Result<SyncMode, String> {
        match s {
            "fixed" | "fixed-epoch" => Ok(SyncMode::FixedEpoch),
            "adaptive" => Ok(SyncMode::Adaptive),
            other => Err(format!(
                "unknown sync mode `{other}` (expected `fixed` or `adaptive`)"
            )),
        }
    }
}

/// Shared coordination state borrowed by every rank thread. Kept in process
/// memory under every transport: it is the *termination detector*, not part
/// of event movement (a distributed backend would replace it with its own
/// reduction; the transport trait deliberately does not own it).
#[derive(Clone, Copy)]
pub(crate) struct RankShared<'a> {
    /// Each rank's earliest pending local event time (ps), for termination.
    pub next_times: &'a [AtomicU64],
    /// Cross-rank events sent / fully absorbed, for in-flight detection.
    pub events_sent: &'a AtomicU64,
    pub events_recvd: &'a AtomicU64,
    pub all_done: &'a AtomicBool,
}

/// Per-rank synchronization state for the null-message protocol.
pub(crate) struct SyncState {
    my_rank: u32,
    mode: SyncMode,
    /// Ranks I share at least one link with, in ascending order.
    neighbors: Vec<u32>,
    /// Lookahead used for promises to each rank (ps); `u64::MAX` for
    /// non-neighbors. Pairwise under `Adaptive`, the global minimum under
    /// `FixedEpoch` (weaker but still correct promises — the control).
    la_out: Vec<u64>,
    /// Latest EOT promise received from each rank (ps).
    eit: Vec<u64>,
    /// Last EOT announced to each rank, to suppress no-news nulls.
    last_eot: Vec<u64>,
    /// Announcement rounds executed (reported as `epochs`).
    pub rounds: u64,
    /// Batches sent / pure-null batches / cross-rank events, for the sync
    /// profile (counted unconditionally: one add per announcement, not per
    /// event).
    pub batches_sent: u64,
    pub null_batches_sent: u64,
    pub events_shipped: u64,
    /// Pure-null announcements suppressed by adaptive deferral.
    pub barriers_skipped: u64,
    /// Null announcements whose EOT jump spanned at least one pairwise
    /// lookahead — epochs the neighbor got to skip entirely.
    pub epochs_widened: u64,
    pub pool: EventBufPool,
}

impl SyncState {
    /// `global_la` is the minimum lookahead over *all* rank pairs (ps); it
    /// replaces the pairwise values under [`SyncMode::FixedEpoch`].
    pub fn new(
        my_rank: u32,
        la_row: &[Option<SimTime>],
        base: u64,
        mode: SyncMode,
        global_la: u64,
    ) -> SyncState {
        let neighbors: Vec<u32> = la_row
            .iter()
            .enumerate()
            .filter_map(|(s, la)| la.map(|_| s as u32))
            .collect();
        let la_out: Vec<u64> = la_row
            .iter()
            .map(|la| match (mode, la) {
                (_, None) => u64::MAX,
                (SyncMode::Adaptive, Some(t)) => t.as_ps(),
                (SyncMode::FixedEpoch, Some(_)) => global_la,
            })
            .collect();
        // A neighbor's first event arrives no earlier than the segment base
        // plus its lookahead to us (every pending event is strictly past the
        // base, and it cannot send before processing one); links are
        // symmetric so the outbound lookahead doubles as the inbound one.
        // Non-neighbors never send, so their EIT contribution is infinite.
        // Under FixedEpoch both sides seed with the same (smaller) global
        // value, so the seed is conservative there too.
        let eit = la_out.iter().map(|&la| base.saturating_add(la)).collect();
        SyncState {
            my_rank,
            mode,
            neighbors,
            la_out,
            eit,
            last_eot: vec![0; la_row.len()],
            rounds: 0,
            batches_sent: 0,
            null_batches_sent: 0,
            events_shipped: 0,
            barriers_skipped: 0,
            epochs_widened: 0,
            pool: EventBufPool::new(),
        }
    }

    /// Earliest time a neighbor could still send me an event.
    pub fn eit_min(&self) -> u64 {
        self.neighbors
            .iter()
            .map(|&s| self.eit[s as usize])
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Fold one received batch into the queue and the EIT table.
    pub fn absorb(&mut self, batch: Batch, queue: &mut EventQueue, shared: &RankShared<'_>) {
        let from = batch.from as usize;
        debug_assert!(batch.eot >= self.eit[from], "EOT promises must be monotone");
        let n_events = batch.events.len() as u64;
        let mut events = batch.events;
        for ev in events.drain(..) {
            queue.push(ev);
        }
        self.pool.put(events);
        self.eit[from] = self.eit[from].max(batch.eot);
        if n_events > 0 {
            // Publish the new earliest local time *before* acknowledging the
            // events, so a termination check that sees balanced counters also
            // sees this rank as busy (see the ordering argument in
            // `globally_idle`).
            publish_next(queue, self.my_rank, shared);
            shared.events_recvd.fetch_add(n_events, Ordering::SeqCst);
        }
    }

    /// Send pending cross-rank events and any improved EOT promises through
    /// the endpoint, then flush it (one wire push per round). A batch goes
    /// to a neighbor only when there is news for it.
    ///
    /// `announce_nulls` gates *pure* null messages (EOT-only batches) under
    /// [`SyncMode::Adaptive`]. While a rank is making local progress its EOT
    /// improves every iteration, and re-announcing each small step is the
    /// null-message storm CMB is infamous for; deferring them costs
    /// neighbors nothing as long as the rank announces before it blocks or
    /// retires. Two escapes keep pipelining tight: an EOT jump of at least
    /// the pairwise lookahead is announced immediately (it widens the
    /// neighbor's whole next window), and event-carrying batches always
    /// flush. [`SyncMode::FixedEpoch`] announces everything, every round.
    pub fn flush_and_announce(
        &mut self,
        outbound: &mut [Vec<ScheduledEvent>],
        queue: &EventQueue,
        shared: &RankShared<'_>,
        ep: &mut dyn RankEndpoint,
        announce_nulls: bool,
    ) {
        let adaptive = self.mode == SyncMode::Adaptive;
        let announce_nulls = announce_nulls || !adaptive;
        let next_local = queue.next_time().map_or(u64::MAX, |t| t.as_ps());
        let basis = next_local.min(self.eit_min());
        let mut announced = false;
        for i in 0..self.neighbors.len() {
            let s = self.neighbors[i] as usize;
            let eot = basis.saturating_add(self.la_out[s]).max(self.last_eot[s]);
            let has_events = !outbound[s].is_empty();
            if !has_events {
                if eot == self.last_eot[s] {
                    continue;
                }
                let jump = eot - self.last_eot[s];
                if !announce_nulls && jump < self.la_out[s] {
                    self.barriers_skipped += 1;
                    continue;
                }
                if adaptive && self.last_eot[s] != 0 && jump >= self.la_out[s] {
                    self.epochs_widened += 1;
                }
            }
            let events = std::mem::replace(&mut outbound[s], self.pool.get());
            self.batches_sent += 1;
            if events.is_empty() {
                self.null_batches_sent += 1;
            } else {
                self.events_shipped += events.len() as u64;
                shared
                    .events_sent
                    .fetch_add(events.len() as u64, Ordering::SeqCst);
            }
            self.last_eot[s] = eot;
            ep.send(
                s as u32,
                Batch {
                    from: self.my_rank,
                    events,
                    eot,
                },
            );
            announced = true;
        }
        if announced {
            self.rounds += 1;
            // One wire push per announcement round: a buffering transport
            // coalesces all of this round's batches per peer. Never deferred
            // past this call — an unflushed promise could stall a neighbor
            // forever (liveness).
            ep.flush();
        }
    }
}

pub(crate) fn publish_next(queue: &EventQueue, my_rank: u32, shared: &RankShared<'_>) {
    let next = queue.next_time().map_or(u64::MAX, |t| t.as_ps());
    shared.next_times[my_rank as usize].store(next, Ordering::SeqCst);
}

/// Global termination check for exhaustive runs, valid only when this rank
/// is itself idle: every rank idle and no cross-rank events in flight.
///
/// Read order matters: receives are counted *after* their events are
/// published in `next_times` (see `absorb`), so reading `recvd` before
/// `sent` before `next_times` guarantees that balanced counters plus
/// all-idle really is a global quiescent state — any message sent before
/// our `sent` read was absorbed before our `recvd` read, and its effect on
/// the owner's `next_times` is visible to the later reads.
pub(crate) fn globally_idle(shared: &RankShared<'_>) -> bool {
    let recvd = shared.events_recvd.load(Ordering::SeqCst);
    let sent = shared.events_sent.load(Ordering::SeqCst);
    recvd == sent
        && shared
            .next_times
            .iter()
            .all(|t| t.load(Ordering::SeqCst) == u64::MAX)
}

/// What one rank hands back besides its kernel: sync-protocol counters and
/// (when profiling) wallclock stall time. Accumulated across segments.
#[derive(Default)]
pub(crate) struct RankRunInfo {
    pub rounds: u64,
    pub batches_sent: u64,
    pub null_batches_sent: u64,
    pub events_shipped: u64,
    pub barriers_skipped: u64,
    pub epochs_widened: u64,
    /// Times the rank blocked waiting for a neighbor's promise.
    pub stall_rounds: u64,
    pub stall_ns: u64,
}

impl RankRunInfo {
    pub fn accumulate(&mut self, seg: &RankRunInfo) {
        self.rounds += seg.rounds;
        self.batches_sent += seg.batches_sent;
        self.null_batches_sent += seg.null_batches_sent;
        self.events_shipped += seg.events_shipped;
        self.barriers_skipped += seg.barriers_skipped;
        self.epochs_widened += seg.epochs_widened;
        self.stall_rounds += seg.stall_rounds;
        self.stall_ns += seg.stall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_mode_parses_and_prints() {
        assert_eq!("fixed".parse::<SyncMode>().unwrap(), SyncMode::FixedEpoch);
        assert_eq!(
            "fixed-epoch".parse::<SyncMode>().unwrap(),
            SyncMode::FixedEpoch
        );
        assert_eq!("adaptive".parse::<SyncMode>().unwrap(), SyncMode::Adaptive);
        assert!("lax".parse::<SyncMode>().is_err());
        assert_eq!(SyncMode::FixedEpoch.to_string(), "fixed");
        assert_eq!(SyncMode::Adaptive.to_string(), "adaptive");
    }

    #[test]
    fn fixed_epoch_uses_global_lookahead() {
        let la_row = vec![None, Some(SimTime::ns(10)), Some(SimTime::ns(3))];
        let adaptive = SyncState::new(0, &la_row, 0, SyncMode::Adaptive, SimTime::ns(3).as_ps());
        let fixed = SyncState::new(0, &la_row, 0, SyncMode::FixedEpoch, SimTime::ns(3).as_ps());
        // Adaptive seeds each neighbor's EIT with the pairwise lookahead;
        // fixed collapses both to the global minimum.
        assert_eq!(adaptive.eit[1], SimTime::ns(10).as_ps());
        assert_eq!(fixed.eit[1], SimTime::ns(3).as_ps());
        assert_eq!(adaptive.eit[2], fixed.eit[2]);
        assert_eq!(adaptive.eit_min(), fixed.eit_min());
    }
}
