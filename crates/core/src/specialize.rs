//! Build-time static graph specialization.
//!
//! Structural simulation graphs are overwhelmingly *regular*: a torus is one
//! router component stamped out `side²` times, a memory system is one bank
//! model stamped out per bank. The generic engine pays for that generality on
//! every delivery — a virtual `on_event` dispatch through a boxed trait
//! object, a `SimCtx` assembled per event, a virtual queue push per send.
//! This module recovers the regularity at build time, after the graph is
//! wired but before `setup` runs:
//!
//! * **Fusion** ([`specialize_kernel`], part a): every homogeneous array of
//!   components that opts in via [`Component::fuse_key`] is collapsed into
//!   one [`SoaGroup`] holding the member state in a contiguous
//!   struct-of-arrays vector. Delivery to any member of the group enters a
//!   *monomorphized* batch loop ([`FusedGroup::deliver_batch`]) that inlines
//!   the concrete `on_event` and the concrete queue push — one virtual call
//!   per consecutive run of fused events instead of one (or more) per event.
//! * **Chain flattening** (part b): components that declare themselves pure
//!   constant-latency forwarders via [`Component::chain_forward`] get a
//!   [`ForwardSpec`]: the engine performs their entire delivery (stat bump,
//!   send-sequence assignment, latency fold) inline while walking the chain,
//!   so an event crosses N forwarders with one queue round-trip instead of N.
//! * **Queue auto-selection** (part c): [`AutoQueue`](crate::queue::AutoQueue)
//!   picks the backend from the observed pending-set depth; see `queue.rs`.
//!
//! # Bit-identity
//!
//! Specialization is a *speed* transformation, never a semantic one. The
//! fused batch loop performs exactly the per-event work of the generic path
//! (straggler interleave via `pop_if_key_before`, per-member RNG/send-seq/
//! stats, clock-resume draining), and members keep their own `Slot` — name,
//! id, RNG stream, sequence cursor, link table — so snapshots, stats labels,
//! and trace/profile attribution are per member, unchanged. Fusion is
//! per-kernel, so parallel builds split groups at rank boundaries for free
//! (slots are densely packed per rank).
//!
//! Chain flattening is legal only when every event the forwarder ever
//! receives arrives on its declared in-port (enforced structurally: exactly
//! the two declared ports may be wired, and violations of the behavioral
//! contract panic at delivery). Folded hops assign the forwarder's send
//! sequence early — at chain-head delivery time — which preserves the
//! unfused assignment order because all traffic into the chain funnels
//! through the head in queue order and equal-latency FIFO links keep it.
//! Folding never advances a hop past the engine's current step bound: a hop
//! that would land beyond the bound queues the *exact* event the unfused run
//! would have queued, so queue contents — and therefore checkpoints and
//! their state hashes — agree at every step boundary.
//!
//! Instrumented runs (tracing/profiling/sampling) keep the generic delivery
//! path: traces stay per member and byte-identical to unfused runs.

use crate::component::{CompState, Component, CtxSink, EventSink, LinkEnd, SimCtx, Slot};
use crate::engine::{ClockState, Kernel};
use crate::event::{
    ClockId, ComponentId, EventClass, EventKey, EventKind, PortId, ScheduledEvent, TieBreak,
};
use crate::queue::{AutoQueue, BinaryHeapQueue, IndexedQueue};
use crate::stats::{StatId, StatsRegistry};
use crate::time::SimTime;
use std::any::{Any, TypeId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for whether builds specialize. `SystemBuilder::new`
/// and `LazySystem::specialize` read it; the CLI's `--no-specialize` clears
/// it at startup. Tests that need a specific setting must use the explicit
/// per-builder flag instead of toggling this (tests run concurrently).
static SPECIALIZE_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Set the process-wide specialization default (CLI opt-out hook).
pub fn set_default(enabled: bool) {
    SPECIALIZE_DEFAULT.store(enabled, Ordering::Relaxed);
}

/// The process-wide specialization default.
pub fn default_enabled() -> bool {
    SPECIALIZE_DEFAULT.load(Ordering::Relaxed)
}

/// Fusion opt-in token returned by [`Component::fuse_key`]. Components of
/// the same concrete type (same `TypeId`) fuse into one group per kernel.
pub struct FuseKey {
    pub(crate) type_id: TypeId,
    pub(crate) make: fn() -> Box<dyn FusedGroup>,
}

impl FuseKey {
    /// The key for concrete component type `T`. A component's `fuse_key`
    /// must name its own type: `FuseKey::of::<Self>()`.
    pub fn of<T: Component + 'static>() -> FuseKey {
        FuseKey {
            type_id: TypeId::of::<T>(),
            make: || Box::new(SoaGroup::<T>::new()),
        }
    }
}

/// Chain-flattening opt-in returned by [`Component::chain_forward`].
///
/// Declaring this is a behavioral contract: the component's `on_event` for
/// `in_port` does exactly two things — bump the named counter (if any) once,
/// and re-send the received payload *unchanged* on `out_port` with no extra
/// delay (`ctx.send_slot(out_port, payload, SimTime::ZERO)`) — touching no
/// other state, no RNG, no clocks, and it never receives events on any other
/// port. The engine then performs that work inline while folding the chain.
#[derive(Debug, Clone, Copy)]
pub struct ChainSpec {
    pub in_port: PortId,
    pub out_port: PortId,
    /// Name of the counter (registered in `setup` via `stat_counter`) bumped
    /// once per forwarded event; `None` if the component keeps none.
    pub stat: Option<&'static str>,
}

/// Resolved per-slot forwarding entry: arrival port, outgoing link, and the
/// counter to bump per hop. Built by [`specialize_kernel`]; the stat id is
/// resolved after `setup` (when stats exist) by [`resolve_forward_stats`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ForwardSpec {
    pub(crate) in_port: PortId,
    pub(crate) out: LinkEnd,
    pub(crate) stat_name: Option<&'static str>,
    pub(crate) stat: Option<StatId>,
}

/// A concrete-backend queue handle threaded into fused batch delivery. The
/// enum match compiles to one predictable branch per push — the active
/// variant never changes within a batch — letting LLVM inline the concrete
/// push where a `&mut dyn EventSink` would force an indirect call.
pub enum SinkRef<'a> {
    Indexed(&'a mut IndexedQueue),
    Heap(&'a mut BinaryHeapQueue),
    Auto(&'a mut AutoQueue),
}

impl EventSink for SinkRef<'_> {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, _target_rank: u32) {
        match self {
            SinkRef::Indexed(q) => q.push(ev),
            SinkRef::Heap(q) => q.push(ev),
            SinkRef::Auto(q) => q.push(ev),
        }
    }
}

impl SinkRef<'_> {
    #[inline]
    pub(crate) fn pop_if_key_before(&mut self, key: EventKey) -> Option<ScheduledEvent> {
        match self {
            SinkRef::Indexed(q) => q.pop_if_key_before(key),
            SinkRef::Heap(q) => q.pop_if_key_before(key),
            SinkRef::Auto(q) => q.pop_if_key_before(key),
        }
    }

    /// A shorter-lived handle to the same queue, so a per-delivery `SimCtx`
    /// can take the sink by value while the batch loop keeps its own.
    #[inline]
    pub(crate) fn reborrow(&mut self) -> SinkRef<'_> {
        match self {
            SinkRef::Indexed(q) => SinkRef::Indexed(q),
            SinkRef::Heap(q) => SinkRef::Heap(q),
            SinkRef::Auto(q) => SinkRef::Auto(q),
        }
    }
}

/// Kernel state a fused group's batch loop needs, borrow-split from the
/// kernel exactly like [`SimCtx`] is for a single delivery.
pub struct BatchCtx<'a> {
    pub(crate) slot_index: &'a [u32],
    pub(crate) slots: &'a mut [Slot],
    pub(crate) stats: &'a mut StatsRegistry,
    pub(crate) clocks: &'a mut [ClockState],
    pub(crate) resume_buf: &'a mut Vec<ClockId>,
    pub(crate) now: SimTime,
    /// Message deliveries performed by the group loop; folded into
    /// `Kernel::events` by the caller.
    pub(crate) events: u64,
    pub(crate) queue: SinkRef<'a>,
    /// Straggler sentinel, borrowed from the engine's per-batch local. A
    /// straggler — an event that must interleave *between* elements of the
    /// batch being delivered — can only exist once some handler pushes at
    /// the batch instant itself (the instant was fully drained before
    /// delivery began, so everything else pending is strictly later).
    /// Monotone within a batch: set by the first push with `time <= now`,
    /// never cleared (an early straggler may surface many elements later).
    pub(crate) pushed_at_now: &'a mut bool,
    /// The group being delivered to; the loop stops at the first event whose
    /// target is not a member of this group.
    pub(crate) group_id: u32,
    /// A straggler that must be delivered before the next batch element;
    /// the group loop stops and hands it back to the generic outer loop.
    pub(crate) pending: Option<ScheduledEvent>,
}

impl BatchCtx<'_> {
    /// Rare path: a fused member resumed a clock. Mirrors the drain in
    /// `Kernel::with_ctx` exactly.
    #[cold]
    fn apply_clock_resumes(&mut self) {
        while let Some(cid) = self.resume_buf.pop() {
            let clk = &mut self.clocks[cid.0 as usize];
            if !clk.active {
                clk.active = true;
                // Strictly after `now` by construction, so this push can
                // never create a straggler — no sentinel update needed.
                let next = (self.now / clk.period + 1) * clk.period.as_ps();
                self.queue.push(
                    crate::engine::clock_tick(clk, cid, SimTime::ps(next)),
                    u32::MAX,
                );
            }
        }
    }
}

/// A fused homogeneous component array. Implemented by [`SoaGroup`]; boxed
/// one per group in the kernel. Object-safe so the kernel can hold mixed
/// member types, but each *implementation* is monomorphic over the member.
pub trait FusedGroup: Send {
    /// Borrow member `m` as a plain component (snapshot capture, generic
    /// delivery on instrumented/parallel paths).
    fn member_ref(&self, m: u32) -> &dyn Component;
    /// Mutable flavor of [`member_ref`](Self::member_ref).
    fn member_mut(&mut self, m: u32) -> &mut dyn Component;
    /// Downcast hook for [`absorb`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn len(&self) -> u32;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Deliver the longest consecutive run of `batch[start..]` whose targets
    /// are members of this group, starting at `start`; `(first_slot,
    /// first_member)` is the caller's already-resolved location of
    /// `batch[start]`'s target. Returns the number of batch elements consumed
    /// (at least 1). Performs the same per-event work as the generic loop —
    /// straggler checks included — but with the member's `on_event` and the
    /// queue push statically dispatched.
    fn deliver_batch(
        &mut self,
        batch: &mut [ScheduledEvent],
        start: usize,
        first_slot: u32,
        first_member: u32,
        ctx: &mut BatchCtx<'_>,
    ) -> usize;
    /// Deliver one event (already reduced to its instant and
    /// [`EventKind::Message`] body) to `member` with its `on_event`
    /// statically dispatched but none of the batch machinery. Engines use
    /// this for a run of length one — e.g. a ring with a single token in
    /// flight — where the cost must match a generic boxed delivery, not a
    /// one-event batch. The caller counts the event and drains clock
    /// resumes, exactly as it does around the generic path.
    fn deliver_one(&mut self, member: u32, now: SimTime, kind: EventKind, ctx: OneCtx<'_>);
}

/// Kernel state for a single fused delivery ([`FusedGroup::deliver_one`]),
/// borrow-split from the kernel exactly like [`SimCtx`] is.
pub struct OneCtx<'a> {
    pub(crate) slot: &'a mut Slot,
    pub(crate) stats: &'a mut StatsRegistry,
    pub(crate) clock_resumes: &'a mut Vec<ClockId>,
    pub(crate) sink: CtxSink<'a>,
}

/// Struct-of-arrays member storage for one fused component type: the boxed
/// per-slot `dyn Component`s collapse into one contiguous `Vec<T>` that the
/// batch loop walks without pointer chasing.
pub struct SoaGroup<T: Component + 'static> {
    members: Vec<T>,
}

impl<T: Component + 'static> SoaGroup<T> {
    pub(crate) fn new() -> Self {
        SoaGroup {
            members: Vec::new(),
        }
    }
}

/// Move `comp` into `group` (which must be the [`SoaGroup`] of `T`, i.e. the
/// group made by this component's own [`FuseKey`]); returns the member
/// index. This is the one-line body of every [`Component::fuse_into`]
/// implementation.
pub fn absorb<T: Component + 'static>(group: &mut dyn FusedGroup, comp: T) -> u32 {
    let g = group
        .as_any_mut()
        .downcast_mut::<SoaGroup<T>>()
        .expect("fuse_into group does not match the component's fuse_key type");
    g.members.push(comp);
    (g.members.len() - 1) as u32
}

impl<T: Component + 'static> FusedGroup for SoaGroup<T> {
    fn member_ref(&self, m: u32) -> &dyn Component {
        &self.members[m as usize]
    }

    fn member_mut(&mut self, m: u32) -> &mut dyn Component {
        &mut self.members[m as usize]
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn len(&self) -> u32 {
        self.members.len() as u32
    }

    fn deliver_batch(
        &mut self,
        batch: &mut [ScheduledEvent],
        start: usize,
        first_slot: u32,
        first_member: u32,
        ctx: &mut BatchCtx<'_>,
    ) -> usize {
        let (mut si, mut member) = (first_slot as usize, first_member);
        let mut i = start;
        loop {
            let EventKind::Message { port, payload } = take_kind(&mut batch[i]) else {
                unreachable!("clock tick delivered to a fused member (clock owners never fuse)");
            };
            ctx.events += 1;
            let slot = &mut ctx.slots[si];
            {
                let mut sim = SimCtx {
                    now: ctx.now,
                    me: slot.id,
                    me_rank: slot.rank,
                    name: &slot.name,
                    links: &slot.links,
                    rng: &mut slot.rng,
                    send_seq: &mut slot.send_seq,
                    stats: ctx.stats,
                    sink: CtxSink::Instant {
                        queue: ctx.queue.reborrow(),
                        now: ctx.now,
                        pushed_at_now: &mut *ctx.pushed_at_now,
                    },
                    clock_resumes: ctx.resume_buf,
                    tracer: None,
                };
                self.members[member as usize].on_event(port, payload, &mut sim);
            }
            if !ctx.resume_buf.is_empty() {
                ctx.apply_clock_resumes();
            }
            i += 1;
            if i >= batch.len() {
                break;
            }
            let target = batch[i].target;
            si = match ctx.slot_index.get(target.0 as usize) {
                Some(&k) if k != u32::MAX => k as usize,
                _ => break,
            };
            member = match ctx.slots[si].comp {
                CompState::Fused { group, member } if group == ctx.group_id => member,
                _ => break,
            };
            // Only a push at the batch instant can have created a straggler;
            // until one happens (the `CtxSink::Instant` sentinel watches) the
            // queue peek is provably `None` and skipped. The outer loop
            // checked stragglers for `batch[start]` already.
            if *ctx.pushed_at_now {
                if let Some(s) = ctx.queue.pop_if_key_before(batch[i].key()) {
                    ctx.pending = Some(s);
                    break;
                }
            }
        }
        i - start
    }

    fn deliver_one(&mut self, member: u32, now: SimTime, kind: EventKind, ctx: OneCtx<'_>) {
        let EventKind::Message { port, payload } = kind else {
            unreachable!("clock tick delivered to a fused member (clock owners never fuse)");
        };
        let OneCtx {
            slot,
            stats,
            clock_resumes,
            sink,
        } = ctx;
        let mut sim = SimCtx {
            now,
            me: slot.id,
            me_rank: slot.rank,
            name: &slot.name,
            links: &slot.links,
            rng: &mut slot.rng,
            send_seq: &mut slot.send_seq,
            stats,
            sink,
            clock_resumes,
            tracer: None,
        };
        self.members[member as usize].on_event(port, payload, &mut sim);
    }
}

/// Swap just the event *body* out of the batch buffer (the key fields stay —
/// run detection never looks at them again once delivery starts). Half the
/// traffic of [`take_event`] for paths that only need the payload.
#[inline]
pub(crate) fn take_kind(slot: &mut ScheduledEvent) -> EventKind {
    std::mem::replace(
        &mut slot.kind,
        EventKind::ClockTick {
            clock: ClockId(0),
            cycle: 0,
        },
    )
}

/// Swap an event out of the batch buffer, leaving a payload-free dummy.
#[inline]
pub(crate) fn take_event(slot: &mut ScheduledEvent) -> ScheduledEvent {
    std::mem::replace(
        slot,
        ScheduledEvent {
            time: SimTime::ZERO,
            class: EventClass::Clock,
            tie: TieBreak {
                src: ComponentId(0),
                seq: 0,
            },
            target: ComponentId(0),
            kind: EventKind::ClockTick {
                clock: ClockId(0),
                cycle: 0,
            },
        },
    )
}

/// Minimum number of same-type opt-in components before fusing pays for the
/// group indirection.
const MIN_GROUP_SIZE: u32 = 2;

/// The build-time specialization pass. Runs per kernel, after links are
/// wired and before `setup`; parallel builds call it once per rank, which is
/// what splits fusion groups at rank boundaries (slots are per-rank dense).
///
/// Legality rules enforced here (see DESIGN.md §11):
/// * components that own a clock never fuse and never forward (clock ticks
///   must take the generic path);
/// * a forwarder must have exactly its declared in/out ports wired (distinct
///   ports, both connected, nothing else) — the structural half of the
///   single-ingress requirement;
/// * forwarding wins over fusion when a component declares both.
pub(crate) fn specialize_kernel(k: &mut Kernel) {
    let clock_owned: HashSet<u32> = k.clocks.iter().map(|c| c.comp.0).collect();

    // (b) chain forwarding: resolve ChainSpecs against the wired link table.
    let mut forward: Vec<Option<ForwardSpec>> = vec![None; k.slots.len()];
    for (i, slot) in k.slots.iter().enumerate() {
        if clock_owned.contains(&slot.id.0) {
            continue;
        }
        let CompState::Boxed(Some(comp)) = &slot.comp else {
            continue;
        };
        let Some(spec) = comp.chain_forward() else {
            continue;
        };
        if spec.in_port == spec.out_port {
            continue;
        }
        let declared = |p: usize| p == spec.in_port.0 as usize || p == spec.out_port.0 as usize;
        let wired_ok = slot
            .links
            .iter()
            .enumerate()
            .all(|(p, l)| l.is_some() == declared(p))
            && slot.links.len() > spec.in_port.0.max(spec.out_port.0) as usize;
        if !wired_ok {
            continue;
        }
        let out = slot.links[spec.out_port.0 as usize].expect("out port checked wired");
        forward[i] = Some(ForwardSpec {
            in_port: spec.in_port,
            out,
            stat_name: spec.stat,
            stat: None,
        });
    }

    // (a) fusion: count opt-in candidates per concrete type, then absorb
    // every type that clears the threshold, in slot order (slot order ==
    // member order, a determinism invariant snapshots rely on).
    let mut counts: HashMap<TypeId, u32> = HashMap::new();
    for (i, slot) in k.slots.iter().enumerate() {
        if forward[i].is_some() || clock_owned.contains(&slot.id.0) {
            continue;
        }
        if let CompState::Boxed(Some(comp)) = &slot.comp {
            if let Some(key) = comp.fuse_key() {
                *counts.entry(key.type_id).or_insert(0) += 1;
            }
        }
    }
    let mut groups: Vec<Option<Box<dyn FusedGroup>>> = Vec::new();
    let mut group_of: HashMap<TypeId, u32> = HashMap::new();
    for (i, slot) in k.slots.iter_mut().enumerate() {
        if forward[i].is_some() || clock_owned.contains(&slot.id.0) {
            continue;
        }
        let (type_id, make) = match &slot.comp {
            CompState::Boxed(Some(comp)) => match comp.fuse_key() {
                Some(key) if counts.get(&key.type_id).copied().unwrap_or(0) >= MIN_GROUP_SIZE => {
                    (key.type_id, key.make)
                }
                _ => continue,
            },
            _ => continue,
        };
        let gid = *group_of.entry(type_id).or_insert_with(|| {
            groups.push(Some(make()));
            (groups.len() - 1) as u32
        });
        let taken = std::mem::replace(
            &mut slot.comp,
            CompState::Fused {
                group: gid,
                member: u32::MAX,
            },
        );
        let CompState::Boxed(Some(boxed)) = taken else {
            unreachable!("matched Boxed(Some) above");
        };
        let member = boxed.fuse_into(groups[gid as usize].as_deref_mut().expect("group live"));
        slot.comp = CompState::Fused { group: gid, member };
    }

    k.groups = groups;
    k.forward = forward;
    k.specialized = true;
}

/// Resolve forwarding stat names to live [`StatId`]s. Must run after
/// `setup` (the registry is append-only and setup does the registering). A
/// declared stat that setup never registered voids that slot's ForwardSpec:
/// the generic path then does whatever the component actually does, keeping
/// bit-identity over speed.
pub(crate) fn resolve_forward_stats(k: &mut Kernel) {
    for i in 0..k.forward.len() {
        let Some(spec) = &k.forward[i] else { continue };
        let Some(name) = spec.stat_name else { continue };
        match k.stats.find(&k.slots[i].name, name) {
            Some(id) => {
                if let Some(spec) = &mut k.forward[i] {
                    spec.stat = Some(id);
                }
            }
            None => k.forward[i] = None,
        }
    }
}
