//! Fleet-level sweep machinery: a work-stealing scheduler for independent
//! simulations plus a content-addressed, on-disk result cache.
//!
//! One simulation explores one point; an architecture study explores
//! thousands. This module supplies the two pieces every sweep driver needs:
//!
//! * [`run_jobs`] — run N independent jobs over a fixed worker pool with
//!   per-worker deques and work stealing. Results come back **in job
//!   order** regardless of completion order, so a sweep's output is
//!   bit-identical at any worker count.
//! * [`ResultCache`] — a directory of versioned JSON entries addressed by
//!   the canonical FNV-1a config hash
//!   ([`config_hash_hex`](crate::telemetry::config_hash_hex), the same
//!   helper run manifests use). A hit serves the stored [`SimReport`] —
//!   with `wall_seconds` zeroed, so cached bytes are deterministic —
//!   instead of re-simulating. Anything unreadable, truncated, or carrying
//!   the wrong schema/key is a *miss* (recompute and overwrite) with a
//!   structured stderr warning, never a panic.
//!
//! The cache also stores shared-prefix snapshots for fork-at-checkpoint
//! sweeps: the prefix's sealed [`Snapshot`] lands at
//! `<state_hash>.snap.json` (the state hash doubles as the content
//! address) with a small `prefix-<config_hash>.json` index pointing at it,
//! so identical prefixes are simulated once across sweeps.

use crate::engine::SimReport;
use crate::snapshot::Snapshot;
use crate::stats::StatsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Work-stealing scheduler

/// What the scheduler did, for bench reporting and tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedStats {
    /// Workers actually used (requested count clamped to the job count).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

/// Run `jobs` over `workers` OS threads and return their results **in job
/// order**, with scheduler counters.
///
/// Each worker owns a deque of job indices, seeded round-robin; it pops its
/// own deque from the front and, when empty, steals from the back of the
/// other deques in a fixed scan order. Jobs themselves live in take-once
/// slots, so a job runs exactly once no matter how indices move between
/// deques. Because results are scattered back by index, the output is
/// independent of completion order — a sweep at 8 workers is bit-identical
/// to the same sweep at 1.
pub fn run_jobs<T, F>(jobs: Vec<F>, workers: usize) -> (Vec<T>, SchedStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    // Take-once job slots: claiming a job empties its slot under a lock, so
    // an index that lingers in some deque can never run the job twice.
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let mut collected: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let slots = &slots;
                let deques = &deques;
                let steals = &steals;
                s.spawn(move || {
                    let mut ran: Vec<(usize, T)> = Vec::new();
                    loop {
                        let mut idx = deques[me].lock().unwrap().pop_front();
                        let mut stolen = false;
                        if idx.is_none() {
                            for step in 1..workers {
                                let victim = (me + step) % workers;
                                if let Some(i) = deques[victim].lock().unwrap().pop_back() {
                                    idx = Some(i);
                                    stolen = true;
                                    break;
                                }
                            }
                        }
                        // Every deque empty: no job can appear later (the
                        // job set is fixed), so this worker is done.
                        let Some(i) = idx else { break };
                        let Some(job) = slots[i].lock().unwrap().take() else {
                            continue;
                        };
                        if stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        ran.push((i, job()));
                    }
                    ran
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("sweep worker panicked"));
        }
    });
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, r) in collected {
        debug_assert!(results[i].is_none(), "job {i} ran twice");
        results[i] = Some(r);
    }
    let ordered: Vec<T> = results
        .into_iter()
        .map(|r| r.expect("every job ran exactly once"))
        .collect();
    (
        ordered,
        SchedStats {
            workers,
            jobs: n,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

// ---------------------------------------------------------------------------
// Content-addressed result cache

/// Version tag carried by every cached sweep result.
pub const SWEEP_RESULT_SCHEMA: &str = "sst-sweep-result-v1";
/// Version tag carried by every prefix-index entry.
pub const SWEEP_PREFIX_SCHEMA: &str = "sst-sweep-prefix-v1";

/// One cached sweep result: the full [`SimReport`] plus the final state
/// hash and stats snapshot surfaced at the top level for cheap inspection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedResult {
    pub schema: String,
    /// The canonical config hash this entry answers for (also its address).
    pub config_hash: String,
    /// The run's sealed final state hash.
    pub final_state_hash: String,
    /// The run's final statistics table.
    pub stats: StatsSnapshot,
    /// Wall-clock seconds the original simulation took. Kept *outside* the
    /// report so the report's bytes stay deterministic.
    pub wall_seconds: f64,
    /// The report with `wall_seconds` zeroed — the one nondeterministic
    /// field — so a cache hit is byte-identical to a cold run's
    /// canonicalized report.
    pub report: SimReport,
}

impl CachedResult {
    /// Canonicalize `report` into a cache entry for `config_hash`: the
    /// measured wallclock moves to [`CachedResult::wall_seconds`] and the
    /// embedded report's is zeroed.
    pub fn new(config_hash: &str, mut report: SimReport) -> CachedResult {
        let wall = report.wall_seconds;
        report.wall_seconds = 0.0;
        CachedResult {
            schema: SWEEP_RESULT_SCHEMA.to_string(),
            config_hash: config_hash.to_string(),
            final_state_hash: report.final_state_hash.clone().unwrap_or_default(),
            stats: report.stats.clone(),
            wall_seconds: wall,
            report,
        }
    }
}

/// Index entry mapping a prefix *config* hash to the *state* hash (and thus
/// file name) of its stored snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PrefixIndex {
    schema: String,
    config_hash: String,
    state_hash: String,
}

/// Cache counters, for sweep summaries and the CI smoke assertion.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub prefix_hits: u64,
    pub prefix_misses: u64,
}

/// Why a lookup did not produce an entry.
enum MissKind {
    /// No file — the ordinary cold-cache case, not worth a warning.
    Absent,
    /// A file exists but is unusable; warned and treated as a miss.
    Corrupt(String),
}

/// A directory of content-addressed sweep results and prefix snapshots.
///
/// All methods take `&self` and are safe to call from scheduler workers
/// concurrently. Every failure mode — missing file, truncated JSON, wrong
/// schema, entry keyed for a different config — degrades to a miss; the
/// only I/O that can fail loudly is creating the directory in
/// [`ResultCache::at`].
pub struct ResultCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    prefix_hits: AtomicU64,
    prefix_misses: AtomicU64,
    tmp_seq: AtomicU64,
}

impl ResultCache {
    /// A cache that never hits and never writes (`--no-cache`).
    pub fn disabled() -> ResultCache {
        ResultCache {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            prefix_misses: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// Open (creating if needed) the cache directory at `dir`.
    pub fn at(dir: &Path) -> io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        let mut cache = ResultCache::disabled();
        cache.dir = Some(dir.to_path_buf());
        Ok(cache)
    }

    /// Whether lookups can ever hit (false for [`ResultCache::disabled`]).
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Snapshot of the hit/miss/store counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            prefix_misses: self.prefix_misses.load(Ordering::Relaxed),
        }
    }

    fn result_path(dir: &Path, config_hash: &str) -> PathBuf {
        dir.join(format!("result-{config_hash}.json"))
    }

    fn prefix_path(dir: &Path, config_hash: &str) -> PathBuf {
        dir.join(format!("prefix-{config_hash}.json"))
    }

    fn snap_path(dir: &Path, state_hash: &str) -> PathBuf {
        dir.join(format!("{state_hash}.snap.json"))
    }

    /// Serve the result for `config_hash` from disk, or `None` on any kind
    /// of miss (absent, unparseable, wrong schema, wrong key).
    pub fn lookup(&self, config_hash: &str) -> Option<CachedResult> {
        let Some(dir) = &self.dir else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let path = Self::result_path(dir, config_hash);
        match Self::read_result(&path, config_hash) {
            Ok(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Err(kind) => {
                if let MissKind::Corrupt(why) = kind {
                    warn_miss(&path, &why);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read_result(path: &Path, config_hash: &str) -> Result<CachedResult, MissKind> {
        let text = read_existing(path)?;
        let entry: CachedResult =
            serde_json::from_str(&text).map_err(|e| MissKind::Corrupt(format!("parse: {e}")))?;
        if entry.schema != SWEEP_RESULT_SCHEMA {
            return Err(MissKind::Corrupt(format!(
                "schema `{}` (expected `{SWEEP_RESULT_SCHEMA}`)",
                entry.schema
            )));
        }
        if entry.config_hash != config_hash {
            return Err(MissKind::Corrupt(format!(
                "keyed for config {} (expected {config_hash})",
                entry.config_hash
            )));
        }
        Ok(entry)
    }

    /// Persist `entry` under its config hash. Write failures warn and drop
    /// the entry — the sweep's results are already in memory.
    pub fn store(&self, entry: &CachedResult) {
        let Some(dir) = &self.dir else { return };
        let path = Self::result_path(dir, &entry.config_hash);
        let json = entry.to_value().to_json_string_pretty();
        match self.write_atomic(&path, &json) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[sst] sweep-cache: cannot write {}: {e}", path.display()),
        }
    }

    /// Serve the shared-prefix snapshot recorded for `config_hash`, or
    /// `None` on any kind of miss. The snapshot's recorded state hash must
    /// match the index and the file name it was addressed by.
    pub fn lookup_prefix(&self, config_hash: &str) -> Option<Snapshot> {
        let Some(dir) = &self.dir else {
            self.prefix_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let path = Self::prefix_path(dir, config_hash);
        match Self::read_prefix(dir, &path, config_hash) {
            Ok(snap) => {
                self.prefix_hits.fetch_add(1, Ordering::Relaxed);
                Some(snap)
            }
            Err(kind) => {
                if let MissKind::Corrupt(why) = kind {
                    warn_miss(&path, &why);
                }
                self.prefix_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read_prefix(dir: &Path, path: &Path, config_hash: &str) -> Result<Snapshot, MissKind> {
        let text = read_existing(path)?;
        let index: PrefixIndex =
            serde_json::from_str(&text).map_err(|e| MissKind::Corrupt(format!("parse: {e}")))?;
        if index.schema != SWEEP_PREFIX_SCHEMA {
            return Err(MissKind::Corrupt(format!(
                "schema `{}` (expected `{SWEEP_PREFIX_SCHEMA}`)",
                index.schema
            )));
        }
        if index.config_hash != config_hash {
            return Err(MissKind::Corrupt(format!(
                "keyed for config {} (expected {config_hash})",
                index.config_hash
            )));
        }
        let snap_path = Self::snap_path(dir, &index.state_hash);
        let snap_text = read_existing(&snap_path)?;
        let snap = Snapshot::from_json(&snap_text)
            .map_err(|e| MissKind::Corrupt(format!("snapshot {}: {e}", snap_path.display())))?;
        if snap.state_hash != index.state_hash {
            return Err(MissKind::Corrupt(format!(
                "snapshot {} carries state hash {} (index says {})",
                snap_path.display(),
                snap.state_hash,
                index.state_hash
            )));
        }
        Ok(snap)
    }

    /// Persist a sealed shared-prefix snapshot: the snapshot itself at
    /// `<state_hash>.snap.json` (content-addressed, shared across sweeps)
    /// plus the `prefix-<config_hash>.json` index pointing at it.
    pub fn store_prefix(&self, config_hash: &str, snap: &Snapshot) {
        let Some(dir) = &self.dir else { return };
        assert!(
            !snap.state_hash.is_empty(),
            "prefix snapshots must be sealed before caching"
        );
        let snap_path = Self::snap_path(dir, &snap.state_hash);
        if !snap_path.exists() {
            if let Err(e) = self.write_atomic(&snap_path, &snap.to_json_pretty()) {
                eprintln!(
                    "[sst] sweep-cache: cannot write {}: {e}",
                    snap_path.display()
                );
                return;
            }
        }
        let index = PrefixIndex {
            schema: SWEEP_PREFIX_SCHEMA.to_string(),
            config_hash: config_hash.to_string(),
            state_hash: snap.state_hash.clone(),
        };
        let path = Self::prefix_path(dir, config_hash);
        match self.write_atomic(&path, &index.to_value().to_json_string_pretty()) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!("[sst] sweep-cache: cannot write {}: {e}", path.display()),
        }
    }

    /// Write via a unique temp file + rename, so concurrent workers and
    /// interrupted runs can never leave a half-written entry at the final
    /// path (a torn entry would otherwise surface as a corruption warning
    /// on the next lookup).
    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

/// Read a file that may legitimately be absent (cold cache).
fn read_existing(path: &Path) -> Result<String, MissKind> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Err(MissKind::Absent),
        Err(e) => Err(MissKind::Corrupt(format!("read: {e}"))),
    }
}

/// The structured corruption warning: one greppable line per bad entry.
fn warn_miss(path: &Path, why: &str) {
    eprintln!(
        "[sst] sweep-cache: entry={} reason={why} — treating as miss, will recompute and overwrite",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sst_sweep_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn report(events: u64) -> SimReport {
        SimReport {
            end_time: SimTime::ns(100),
            events,
            clock_ticks: 0,
            wall_seconds: 1.25,
            ranks: 1,
            epochs: 0,
            stats: StatsSnapshot::default(),
            profile: None,
            series: None,
            final_state_hash: Some("deadbeefdeadbeef".to_string()),
            queue_backend: Some("indexed".to_string()),
            specialized: false,
        }
    }

    #[test]
    fn scheduler_orders_results_at_any_worker_count() {
        let expect: Vec<usize> = (0..25).map(|i| i * 3).collect();
        for workers in [1, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0..25)
                .map(|i| {
                    move || {
                        // Uneven job sizes so completion order scrambles.
                        std::thread::sleep(std::time::Duration::from_micros((i % 5) as u64 * 200));
                        i * 3
                    }
                })
                .collect();
            let (results, stats) = run_jobs(jobs, workers);
            assert_eq!(results, expect, "workers={workers}");
            assert_eq!(stats.jobs, 25);
            assert_eq!(stats.workers, workers.min(25));
        }
    }

    #[test]
    fn scheduler_handles_empty_and_single() {
        let (results, stats) = run_jobs(Vec::<fn() -> u32>::new(), 4);
        assert!(results.is_empty());
        assert_eq!(stats.jobs, 0);
        let (results, _) = run_jobs(vec![|| 7u32], 4);
        assert_eq!(results, vec![7]);
    }

    #[test]
    fn cache_roundtrip_preserves_canonical_bytes() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::at(&dir).unwrap();
        let entry = CachedResult::new("00d1ce", report(42));
        // Canonicalization zeroes the embedded wallclock but keeps it.
        assert_eq!(entry.wall_seconds, 1.25);
        assert_eq!(entry.report.wall_seconds, 0.0);
        cache.store(&entry);
        let hit = cache.lookup("00d1ce").expect("stored entry hits");
        assert_eq!(
            hit.report.to_value().to_json_string(),
            entry.report.to_value().to_json_string()
        );
        assert_eq!(hit.final_state_hash, "deadbeefdeadbeef");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_and_disabled_are_quiet_misses() {
        let dir = tmp_dir("absent");
        let cache = ResultCache::at(&dir).unwrap();
        assert!(cache.lookup("0000000000000000").is_none());
        assert!(cache.lookup_prefix("0000000000000000").is_none());
        let off = ResultCache::disabled();
        assert!(!off.is_enabled());
        assert!(off.lookup("0000000000000000").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_miss_instead_of_panicking() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::at(&dir).unwrap();
        // Truncated JSON.
        std::fs::write(dir.join("result-aaaa.json"), "{\"schema\": \"sst-sw").unwrap();
        assert!(cache.lookup("aaaa").is_none());
        // Wrong schema.
        let mut entry = CachedResult::new("bbbb", report(1));
        entry.schema = "sst-sweep-result-v999".to_string();
        std::fs::write(
            dir.join("result-bbbb.json"),
            entry.to_value().to_json_string_pretty(),
        )
        .unwrap();
        assert!(cache.lookup("bbbb").is_none());
        // Entry keyed for a different config hash.
        let entry = CachedResult::new("cccc", report(1));
        std::fs::write(
            dir.join("result-dddd.json"),
            entry.to_value().to_json_string_pretty(),
        )
        .unwrap();
        assert!(cache.lookup("dddd").is_none());
        // Recompute + overwrite path: storing over a corrupt entry heals it.
        let fresh = CachedResult::new("aaaa", report(9));
        cache.store(&fresh);
        assert_eq!(cache.lookup("aaaa").unwrap().report.events, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_prefix_entries_miss() {
        let dir = tmp_dir("prefix");
        let cache = ResultCache::at(&dir).unwrap();
        // Index pointing at a snapshot that does not exist.
        std::fs::write(
            dir.join("prefix-eeee.json"),
            PrefixIndex {
                schema: SWEEP_PREFIX_SCHEMA.to_string(),
                config_hash: "eeee".to_string(),
                state_hash: "0123456789abcdef".to_string(),
            }
            .to_value()
            .to_json_string_pretty(),
        )
        .unwrap();
        assert!(cache.lookup_prefix("eeee").is_none());
        // Garbage index.
        std::fs::write(dir.join("prefix-ffff.json"), "not json at all").unwrap();
        assert!(cache.lookup_prefix("ffff").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
