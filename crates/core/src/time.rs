//! Simulated time.
//!
//! SST keeps all simulated time as an integer count of a very fine base unit
//! so that event ordering is bit-exact and independent of floating-point
//! rounding. We use **picoseconds** stored in a `u64`, which covers ~213 days
//! of simulated time — far beyond any architectural simulation horizon.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in (or span of) simulated time, in integer picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn s(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Construct from a fractional nanosecond count (rounded to the nearest
    /// picosecond). Useful for configs expressed in ns.
    #[inline]
    pub fn ns_f64(ns: f64) -> Self {
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Time in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Time in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    /// Time in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    /// Time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a span by an integer count.
    #[inline]
    pub fn times(self, n: u64) -> SimTime {
        SimTime(self.0 * n)
    }

    /// Round this time *up* to the next multiple of `quantum`.
    /// `quantum` must be non-zero.
    #[inline]
    pub fn round_up(self, quantum: SimTime) -> SimTime {
        debug_assert!(quantum.0 > 0);
        let q = quantum.0;
        SimTime(self.0.div_ceil(q) * q)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}
impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}
impl Div<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }
}
impl Rem<SimTime> for SimTime {
    type Output = SimTime;
    #[inline]
    fn rem(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A clock frequency. Stored in Hz; converts to an integer-picosecond period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    #[inline]
    pub fn hz(hz: f64) -> Self {
        assert!(hz > 0.0, "frequency must be positive");
        Frequency { hz }
    }
    #[inline]
    pub fn khz(khz: f64) -> Self {
        Self::hz(khz * 1e3)
    }
    #[inline]
    pub fn mhz(mhz: f64) -> Self {
        Self::hz(mhz * 1e6)
    }
    #[inline]
    pub fn ghz(ghz: f64) -> Self {
        Self::hz(ghz * 1e9)
    }

    #[inline]
    pub fn as_hz(self) -> f64 {
        self.hz
    }
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.hz / 1e9
    }

    /// The clock period, rounded to the nearest picosecond (min 1 ps).
    #[inline]
    pub fn period(self) -> SimTime {
        let ps = (1e12 / self.hz).round() as u64;
        SimTime(ps.max(1))
    }

    /// Number of whole cycles elapsed in `span` at this frequency.
    #[inline]
    pub fn cycles_in(self, span: SimTime) -> u64 {
        span.0 / self.period().0
    }

    /// The duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles(self, cycles: u64) -> SimTime {
        self.period() * cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::ns(1), SimTime::ps(1_000));
        assert_eq!(SimTime::us(1), SimTime::ns(1_000));
        assert_eq!(SimTime::ms(1), SimTime::us(1_000));
        assert_eq!(SimTime::s(1), SimTime::ms(1_000));
        assert_eq!(SimTime::ns_f64(2.5), SimTime::ps(2_500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::ns(10);
        let b = SimTime::ns(4);
        assert_eq!(a + b, SimTime::ns(14));
        assert_eq!(a - b, SimTime::ns(6));
        assert_eq!(a * 3, SimTime::ns(30));
        assert_eq!(a / 2, SimTime::ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, SimTime::ns(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn round_up() {
        let q = SimTime::ns(10);
        assert_eq!(SimTime::ZERO.round_up(q), SimTime::ZERO);
        assert_eq!(SimTime::ns(1).round_up(q), SimTime::ns(10));
        assert_eq!(SimTime::ns(10).round_up(q), SimTime::ns(10));
        assert_eq!(SimTime::ns(11).round_up(q), SimTime::ns(20));
    }

    #[test]
    fn frequency_period() {
        assert_eq!(Frequency::ghz(1.0).period(), SimTime::ns(1));
        assert_eq!(Frequency::ghz(2.0).period(), SimTime::ps(500));
        assert_eq!(Frequency::mhz(100.0).period(), SimTime::ns(10));
        // Sub-picosecond frequencies clamp to 1 ps.
        assert_eq!(Frequency::hz(2e12).period(), SimTime::ps(1));
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::ghz(2.0); // 500 ps period
        assert_eq!(f.cycles(4), SimTime::ns(2));
        assert_eq!(f.cycles_in(SimTime::ns(2)), 4);
        assert_eq!(f.cycles_in(SimTime::ps(499)), 0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::ps(5).to_string(), "5ps");
        assert_eq!(SimTime::ns(5).to_string(), "5ns");
        assert_eq!(SimTime::us(5).to_string(), "5us");
        assert_eq!(SimTime::s(2).to_string(), "2s");
    }
}
