//! Simulated time.
//!
//! SST keeps all simulated time as an integer count of a very fine base unit
//! so that event ordering is bit-exact and independent of floating-point
//! rounding. We use **picoseconds** stored in a `u64`, which covers ~213 days
//! of simulated time — far beyond any architectural simulation horizon.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in (or span of) simulated time, in integer picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn s(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Construct from a fractional nanosecond count (rounded to the nearest
    /// picosecond). Useful for configs expressed in ns.
    ///
    /// A NaN or negative input is a bug in the caller: it trips a
    /// `debug_assert!` in debug builds and clamps to zero with a warning in
    /// release builds (the old behavior silently saturated through `as u64`).
    /// Inputs beyond `u64::MAX` picoseconds saturate to [`SimTime::MAX`].
    #[inline]
    pub fn ns_f64(ns: f64) -> Self {
        debug_assert!(
            ns >= 0.0,
            "SimTime::ns_f64: expected a non-negative nanosecond count, got {ns}"
        );
        if ns.is_nan() || ns < 0.0 {
            // NaN or negative in a release build: clamp loudly instead of
            // letting the float->int cast quietly produce 0.
            eprintln!("warning: SimTime::ns_f64({ns}) is not a valid time; clamping to 0");
            return SimTime::ZERO;
        }
        // `as u64` saturates at u64::MAX, which is the documented overflow
        // behavior (+inf lands there too).
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Time in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Time in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    /// Time in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    /// Time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a span by an integer count.
    #[inline]
    pub fn times(self, n: u64) -> SimTime {
        SimTime(self.0 * n)
    }

    /// Round this time *up* to the next multiple of `quantum`.
    /// `quantum` must be non-zero.
    #[inline]
    pub fn round_up(self, quantum: SimTime) -> SimTime {
        debug_assert!(quantum.0 > 0);
        let q = quantum.0;
        SimTime(self.0.div_ceil(q) * q)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}
impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}
impl Div<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimTime) -> u64 {
        self.0 / rhs.0
    }
}
impl Rem<SimTime> for SimTime {
    type Output = SimTime;
    #[inline]
    fn rem(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A clock frequency. Stored in Hz; converts to an integer-picosecond period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Construct from Hz. Zero, negative, NaN, and infinite frequencies have
    /// no meaningful period and are rejected outright — the old code let
    /// `+inf` through (`inf > 0.0`) and produced a nonsense 0-then-clamped
    /// period.
    #[inline]
    pub fn hz(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be positive and finite, got {hz} Hz"
        );
        Frequency { hz }
    }
    #[inline]
    pub fn khz(khz: f64) -> Self {
        Self::hz(khz * 1e3)
    }
    #[inline]
    pub fn mhz(mhz: f64) -> Self {
        Self::hz(mhz * 1e6)
    }
    #[inline]
    pub fn ghz(ghz: f64) -> Self {
        Self::hz(ghz * 1e9)
    }

    #[inline]
    pub fn as_hz(self) -> f64 {
        self.hz
    }
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.hz / 1e9
    }

    /// The clock period, rounded to the nearest picosecond (min 1 ps).
    #[inline]
    pub fn period(self) -> SimTime {
        let ps = (1e12 / self.hz).round() as u64;
        SimTime(ps.max(1))
    }

    /// Number of whole cycles elapsed in `span` at this frequency.
    ///
    /// Computed from the exact frequency rather than the rounded
    /// per-cycle period, so frequencies with a non-integer-picosecond
    /// period (3 GHz → 333.3̅ ps) don't drift by one cycle every few
    /// thousand: `cycles_in(1ms)` at 3 GHz is exactly 3 000 000, where
    /// dividing by the rounded 333 ps period gave 3 003 003.
    #[inline]
    pub fn cycles_in(self, span: SimTime) -> u64 {
        (span.0 as f64 * self.hz / 1e12) as u64
    }

    /// The duration of `cycles` clock cycles, computed from the exact
    /// frequency in one step. Rounding the period to a whole picosecond
    /// first and multiplying would accumulate the per-period rounding
    /// error `cycles` times over (10⁶ cycles at 3 GHz came out 333 µs
    /// instead of 333.333 µs). Note the engine's *clock ticks* still
    /// advance by the integer-picosecond [`Frequency::period`]; this
    /// method is for latency math, where the exact answer matters.
    #[inline]
    pub fn cycles(self, cycles: u64) -> SimTime {
        SimTime((cycles as f64 * 1e12 / self.hz).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::ns(1), SimTime::ps(1_000));
        assert_eq!(SimTime::us(1), SimTime::ns(1_000));
        assert_eq!(SimTime::ms(1), SimTime::us(1_000));
        assert_eq!(SimTime::s(1), SimTime::ms(1_000));
        assert_eq!(SimTime::ns_f64(2.5), SimTime::ps(2_500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::ns(10);
        let b = SimTime::ns(4);
        assert_eq!(a + b, SimTime::ns(14));
        assert_eq!(a - b, SimTime::ns(6));
        assert_eq!(a * 3, SimTime::ns(30));
        assert_eq!(a / 2, SimTime::ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, SimTime::ns(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn round_up() {
        let q = SimTime::ns(10);
        assert_eq!(SimTime::ZERO.round_up(q), SimTime::ZERO);
        assert_eq!(SimTime::ns(1).round_up(q), SimTime::ns(10));
        assert_eq!(SimTime::ns(10).round_up(q), SimTime::ns(10));
        assert_eq!(SimTime::ns(11).round_up(q), SimTime::ns(20));
    }

    #[test]
    fn frequency_period() {
        assert_eq!(Frequency::ghz(1.0).period(), SimTime::ns(1));
        assert_eq!(Frequency::ghz(2.0).period(), SimTime::ps(500));
        assert_eq!(Frequency::mhz(100.0).period(), SimTime::ns(10));
        // Sub-picosecond frequencies clamp to 1 ps.
        assert_eq!(Frequency::hz(2e12).period(), SimTime::ps(1));
    }

    #[test]
    fn frequency_cycles() {
        let f = Frequency::ghz(2.0); // 500 ps period
        assert_eq!(f.cycles(4), SimTime::ns(2));
        assert_eq!(f.cycles_in(SimTime::ns(2)), 4);
        assert_eq!(f.cycles_in(SimTime::ps(499)), 0);
    }

    #[test]
    fn non_integer_period_does_not_drift() {
        // 3 GHz has a 333.3̅ ps period. A million cycles is 333 333 333.3̅ ps;
        // multiplying the *rounded* period like the old code did would have
        // produced 333 000 000 ps — a third of a microsecond short.
        let f = Frequency::ghz(3.0);
        assert_eq!(f.cycles(1_000_000), SimTime::ps(333_333_333));
        // And the inverse direction: one simulated millisecond really is
        // three million cycles, not 3 003 003.
        assert_eq!(f.cycles_in(SimTime::ms(1)), 3_000_000);
        // The rounded tick period is still what the engine clocks by.
        assert_eq!(f.period(), SimTime::ps(333));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative nanosecond count")]
    fn ns_f64_rejects_negative_in_debug() {
        let _ = SimTime::ns_f64(-1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-negative nanosecond count")]
    fn ns_f64_rejects_nan_in_debug() {
        let _ = SimTime::ns_f64(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn ns_f64_clamps_invalid_in_release() {
        assert_eq!(SimTime::ns_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::ns_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn ns_f64_saturates_on_overflow() {
        // > u64::MAX picoseconds saturates instead of wrapping.
        assert_eq!(SimTime::ns_f64(1e30), SimTime::MAX);
        assert_eq!(SimTime::ns_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn frequency_rejects_zero() {
        let _ = Frequency::hz(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn frequency_rejects_negative() {
        let _ = Frequency::ghz(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn frequency_rejects_infinite() {
        let _ = Frequency::hz(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn frequency_rejects_nan() {
        let _ = Frequency::hz(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::ps(5).to_string(), "5ps");
        assert_eq!(SimTime::ns(5).to_string(), "5ns");
        assert_eq!(SimTime::us(5).to_string(), "5us");
        assert_eq!(SimTime::s(2).to_string(), "2s");
    }
}
