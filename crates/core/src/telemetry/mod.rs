//! Simulator telemetry: event tracing, periodic stats sampling, and engine
//! self-profiling.
//!
//! Telemetry is configured once per run through a [`TelemetrySpec`] — a cheap
//! clonable handle threaded from the CLI down to every engine the run spins
//! up. A disabled spec (the default) costs the engine hot path exactly one
//! pointer null-check per event, so simulations that do not ask for
//! telemetry pay nothing.
//!
//! Three pillars:
//!
//! 1. **Event tracing** ([`Tracer`]): every deliver / schedule / clock-tick /
//!    component mark is appended to a JSONL file (one self-describing JSON
//!    object per line) and mirrored into Chrome `trace_event` format, so a
//!    run opens directly in `chrome://tracing` or Perfetto. Per-component
//!    (exact name or trailing-`*` prefix) and per-kind filters keep traces
//!    of large runs tractable. Records carry simulated time only — never
//!    wallclock — so a deterministic simulation produces a bit-identical
//!    trace on every rerun.
//! 2. **Periodic stats sampling** ([`StatsSeries`]): at a fixed sim-time
//!    interval the engine snapshots all registered counters and accumulators
//!    into a time series. Counters are delta-encoded per interval; the
//!    sample at boundary `b` reflects every event strictly before `b`.
//! 3. **Self-profiling** ([`EngineProfile`]): wallclock time spent in each
//!    component's handlers (event count, total and max nanoseconds), the
//!    pending-queue depth high-watermark, and — for parallel runs — per-rank
//!    sync metrics (batches, pure null messages, stall time).

pub mod live;

use crate::stats::{StatKind, StatsRegistry};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Spec: the user-facing configuration handle

/// Which record kinds a trace captures (bitmask).
pub const TRACE_DELIVER: u8 = 1 << 0;
pub const TRACE_SCHED: u8 = 1 << 1;
pub const TRACE_CLOCK: u8 = 1 << 2;
pub const TRACE_MARK: u8 = 1 << 3;
pub const TRACE_ALL: u8 = TRACE_DELIVER | TRACE_SCHED | TRACE_CLOCK | TRACE_MARK;

/// Parse a trace-kind name (`deliver`, `sched`, `clock`, `mark`) into its
/// mask bit.
pub fn parse_trace_kind(s: &str) -> Result<u8, String> {
    match s {
        "deliver" => Ok(TRACE_DELIVER),
        "sched" | "schedule" => Ok(TRACE_SCHED),
        "clock" => Ok(TRACE_CLOCK),
        "mark" => Ok(TRACE_MARK),
        other => Err(format!(
            "unknown trace kind `{other}` (expected deliver|sched|clock|mark)"
        )),
    }
}

/// Everything the CLI can ask for. Feed to [`TelemetrySpec::new`].
#[derive(Debug, Clone, Default)]
pub struct TelemetryOptions {
    /// JSONL trace output path; the Chrome trace lands next to it with a
    /// `.chrome.json` extension.
    pub trace_path: Option<PathBuf>,
    /// Component filter: exact names or trailing-`*` prefixes. `None` traces
    /// every component.
    pub trace_components: Option<Vec<String>>,
    /// Record-kind mask (see [`TRACE_ALL`]).
    pub trace_kinds: u8,
    /// Sim-time sampling interval for the stats series.
    pub stats_interval: Option<SimTime>,
    /// Collect handler timings, queue high-watermarks, and sync metrics.
    pub profile: bool,
}

impl TelemetryOptions {
    pub fn is_enabled(&self) -> bool {
        self.trace_path.is_some() || self.stats_interval.is_some() || self.profile
    }
}

/// Shared, clonable telemetry configuration. `TelemetrySpec::disabled()`
/// (also `Default`) turns everything off at zero hot-path cost.
#[derive(Clone, Default)]
pub struct TelemetrySpec {
    shared: Option<Arc<TelemetryShared>>,
    /// Label attached to collected per-run results (e.g. the experiment id
    /// or DES phase name).
    label: Option<Arc<str>>,
}

impl fmt::Debug for TelemetrySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetrySpec")
            .field("enabled", &self.shared.is_some())
            .field("label", &self.label)
            .finish()
    }
}

struct TelemetryShared {
    trace: Option<TraceShared>,
    stats_interval: Option<SimTime>,
    profile: bool,
    collector: Mutex<Collector>,
}

struct TraceShared {
    writer: Mutex<TraceWriter>,
    components: Option<Vec<String>>,
    kinds: u8,
}

impl TelemetrySpec {
    /// The no-op spec: engines built with it behave exactly as without
    /// telemetry.
    pub fn disabled() -> TelemetrySpec {
        TelemetrySpec::default()
    }

    /// Open output files and build an active spec. Fails if the trace file
    /// (or its Chrome sibling) cannot be created.
    pub fn new(opts: TelemetryOptions) -> io::Result<TelemetrySpec> {
        if !opts.is_enabled() {
            return Ok(TelemetrySpec::disabled());
        }
        let trace = match &opts.trace_path {
            Some(path) => Some(TraceShared {
                writer: Mutex::new(TraceWriter::create(path)?),
                components: opts.trace_components.clone(),
                kinds: if opts.trace_kinds == 0 {
                    TRACE_ALL
                } else {
                    opts.trace_kinds
                },
            }),
            None => None,
        };
        Ok(TelemetrySpec {
            shared: Some(Arc::new(TelemetryShared {
                trace,
                stats_interval: opts.stats_interval,
                profile: opts.profile,
                collector: Mutex::new(Collector::default()),
            })),
            label: None,
        })
    }

    /// A copy of this spec whose collected results are tagged `label`.
    /// Labels nest: `spec.labeled("miniFE").labeled("fea")` tags runs as
    /// `"miniFE/fea"`.
    pub fn labeled(&self, label: impl AsRef<str>) -> TelemetrySpec {
        let label = match &self.label {
            Some(prefix) => Arc::from(format!("{prefix}/{}", label.as_ref())),
            None => Arc::from(label.as_ref()),
        };
        TelemetrySpec {
            shared: self.shared.clone(),
            label: Some(label),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    fn label(&self) -> &str {
        self.label.as_deref().unwrap_or("run")
    }

    /// Build the per-engine-run mutable state. `parallel` ranks buffer the
    /// whole trace in memory (flushed in rank order after the join, keeping
    /// output deterministic) and skip stats sampling, which has no
    /// rank-merge semantics.
    pub(crate) fn make_state(
        &self,
        names: Arc<Vec<String>>,
        parallel: bool,
    ) -> Option<Box<TelemetryState>> {
        let shared = self.shared.as_ref()?;
        let tracer = shared.trace.as_ref().map(|t| {
            Tracer::new(
                names.clone(),
                t.components.as_deref(),
                t.kinds,
                TraceHandle { spec: self.clone() },
                parallel,
            )
        });
        let sampler = if parallel {
            None
        } else {
            shared
                .stats_interval
                .map(|iv| Sampler::new(iv.as_ps().max(1)))
        };
        let profiler = shared.profile.then(|| Profiler::new(names.len()));
        if tracer.is_none() && sampler.is_none() && profiler.is_none() {
            return None;
        }
        Some(Box::new(TelemetryState {
            names,
            tracer,
            sampler,
            profiler,
        }))
    }

    /// Fold one engine run's results into the spec-wide collector.
    pub(crate) fn collect_run(
        &self,
        seed: u64,
        events: u64,
        clock_ticks: u64,
        wall_seconds: f64,
        profile: Option<&EngineProfile>,
        series: Option<&StatsSeries>,
    ) {
        let Some(shared) = self.shared.as_ref() else {
            return;
        };
        let mut c = shared.collector.lock().unwrap();
        c.runs += 1;
        c.events += events;
        c.clock_ticks += clock_ticks;
        c.wall_seconds += wall_seconds;
        if !c.seeds.contains(&seed) {
            c.seeds.push(seed);
        }
        if let Some(p) = profile {
            c.profiles.push((self.label().to_string(), p.clone()));
        }
        if let Some(s) = series {
            c.series.push((self.label().to_string(), s.clone()));
        }
    }

    /// Flush and close trace outputs (terminating the Chrome JSON array) and
    /// return the aggregate of everything collected. Call once, at the end
    /// of the whole run. Returns `None` for a disabled spec.
    pub fn finish(&self) -> io::Result<Option<TelemetrySummary>> {
        let Some(shared) = self.shared.as_ref() else {
            return Ok(None);
        };
        let mut trace_records = 0;
        if let Some(t) = &shared.trace {
            let mut w = t.writer.lock().unwrap();
            w.finish()?;
            trace_records = w.records;
        }
        let c = shared.collector.lock().unwrap();
        Ok(Some(TelemetrySummary {
            runs: c.runs,
            events: c.events,
            clock_ticks: c.clock_ticks,
            wall_seconds: c.wall_seconds,
            seeds: c.seeds.clone(),
            trace_records,
            profiles: c.profiles.clone(),
            series: c.series.clone(),
        }))
    }
}

#[derive(Default)]
struct Collector {
    runs: u64,
    events: u64,
    clock_ticks: u64,
    wall_seconds: f64,
    seeds: Vec<u64>,
    profiles: Vec<(String, EngineProfile)>,
    series: Vec<(String, StatsSeries)>,
}

/// Aggregate of every engine run executed under one [`TelemetrySpec`].
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    pub runs: u64,
    pub events: u64,
    pub clock_ticks: u64,
    pub wall_seconds: f64,
    pub seeds: Vec<u64>,
    pub trace_records: u64,
    /// `(label, profile)` per profiled engine run.
    pub profiles: Vec<(String, EngineProfile)>,
    /// `(label, series)` per sampled engine run.
    pub series: Vec<(String, StatsSeries)>,
}

// ---------------------------------------------------------------------------
// Per-engine-run state (lives on the kernel as `Option<Box<TelemetryState>>`)

/// Mutable telemetry state for one engine run. The kernel holds it behind an
/// `Option<Box<_>>`: disabled runs pay one null-check per delivered event.
pub(crate) struct TelemetryState {
    pub names: Arc<Vec<String>>,
    pub tracer: Option<Tracer>,
    pub sampler: Option<Sampler>,
    pub profiler: Option<Profiler>,
}

// ---------------------------------------------------------------------------
// Pillar 1: event tracing

/// Buffered trace-record collector for one engine run. Serial engines flush
/// in chunks; parallel ranks buffer everything and flush after the join.
pub(crate) struct Tracer {
    names: Arc<Vec<String>>,
    /// Per-component pass/drop, compiled from the filter patterns.
    enabled: Vec<bool>,
    kinds: u8,
    buf: Vec<TraceRecord>,
    handle: TraceHandle,
    buffer_all: bool,
}

/// Back-reference from a tracer to its spec's shared writer.
struct TraceHandle {
    spec: TelemetrySpec,
}

impl TraceHandle {
    fn with_writer(&self, f: impl FnOnce(&mut TraceWriter) -> io::Result<()>) {
        if let Some(t) = self.spec.shared.as_ref().and_then(|s| s.trace.as_ref()) {
            let mut w = t.writer.lock().unwrap();
            if let Err(e) = f(&mut w) {
                eprintln!("telemetry: trace write failed: {e}");
            }
        }
    }
}

const TRACE_FLUSH_CHUNK: usize = 8192;

/// `src`/`port` sentinel for "not applicable".
const NO_ID: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct TraceRecord {
    t_ps: u64,
    kind: u8, // one of the TRACE_* bits
    src: u32,
    dst: u32,
    port: u32,
    /// sched: delivery time (ps); clock: cycle; mark: value.
    aux: u64,
    /// mark label; empty otherwise.
    label: &'static str,
}

impl Tracer {
    fn new(
        names: Arc<Vec<String>>,
        patterns: Option<&[String]>,
        kinds: u8,
        handle: TraceHandle,
        buffer_all: bool,
    ) -> Tracer {
        let enabled = match patterns {
            None => vec![true; names.len()],
            Some(pats) => names
                .iter()
                .map(|n| {
                    pats.iter().any(|p| match p.strip_suffix('*') {
                        Some(prefix) => n.starts_with(prefix),
                        None => n == p,
                    })
                })
                .collect(),
        };
        Tracer {
            names,
            enabled,
            kinds,
            buf: Vec::new(),
            handle,
            buffer_all,
        }
    }

    #[inline]
    fn comp_on(&self, id: u32) -> bool {
        self.enabled.get(id as usize).copied().unwrap_or(false)
    }

    #[inline]
    fn push(&mut self, rec: TraceRecord) {
        self.buf.push(rec);
        if !self.buffer_all && self.buf.len() >= TRACE_FLUSH_CHUNK {
            self.flush();
        }
    }

    pub fn deliver(&mut self, t_ps: u64, src: u32, dst: u32, port: u32) {
        if self.kinds & TRACE_DELIVER != 0 && (self.comp_on(dst) || self.comp_on(src)) {
            self.push(TraceRecord {
                t_ps,
                kind: TRACE_DELIVER,
                src,
                dst,
                port,
                aux: 0,
                label: "",
            });
        }
    }

    pub fn sched(&mut self, t_ps: u64, src: u32, dst: u32, port: u32, at_ps: u64) {
        if self.kinds & TRACE_SCHED != 0 && (self.comp_on(src) || self.comp_on(dst)) {
            self.push(TraceRecord {
                t_ps,
                kind: TRACE_SCHED,
                src,
                dst,
                port,
                aux: at_ps,
                label: "",
            });
        }
    }

    pub fn clock(&mut self, t_ps: u64, comp: u32, cycle: u64) {
        if self.kinds & TRACE_CLOCK != 0 && self.comp_on(comp) {
            self.push(TraceRecord {
                t_ps,
                kind: TRACE_CLOCK,
                src: NO_ID,
                dst: comp,
                port: NO_ID,
                aux: cycle,
                label: "",
            });
        }
    }

    pub fn mark(&mut self, t_ps: u64, comp: u32, label: &'static str, value: u64) {
        if self.kinds & TRACE_MARK != 0 && self.comp_on(comp) {
            self.push(TraceRecord {
                t_ps,
                kind: TRACE_MARK,
                src: NO_ID,
                dst: comp,
                port: NO_ID,
                aux: value,
                label,
            });
        }
    }

    /// Write the buffered records out through the shared writer.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        let names = self.names.clone();
        self.handle.with_writer(|w| {
            for rec in &buf {
                let at =
                    |id: u32| -> &str { names.get(id as usize).map(String::as_str).unwrap_or("?") };
                w.write_record(rec, at)?;
            }
            Ok(())
        });
    }

    /// Flush remaining records; called once at end of run.
    pub fn finish(mut self) {
        self.flush();
    }
}

/// Owns the two output files. One per [`TelemetrySpec`]; tracers from
/// concurrent engine runs serialize on the mutex around it.
struct TraceWriter {
    jsonl: BufWriter<File>,
    chrome: BufWriter<File>,
    chrome_first: bool,
    chrome_done: bool,
    /// Chrome `tid` per component name (stable across engine runs).
    tids: HashMap<String, u32>,
    records: u64,
    line: String,
}

impl TraceWriter {
    fn create(path: &Path) -> io::Result<TraceWriter> {
        let jsonl = BufWriter::new(File::create(path)?);
        let mut chrome = BufWriter::new(File::create(chrome_trace_path(path))?);
        chrome.write_all(b"{\"traceEvents\":[")?;
        Ok(TraceWriter {
            jsonl,
            chrome,
            chrome_first: true,
            chrome_done: false,
            tids: HashMap::new(),
            records: 0,
            line: String::new(),
        })
    }

    fn tid(&mut self, name: &str) -> (u32, bool) {
        let next = self.tids.len() as u32;
        match self.tids.get(name) {
            Some(&t) => (t, false),
            None => {
                self.tids.insert(name.to_string(), next);
                (next, true)
            }
        }
    }

    fn write_record<'n>(
        &mut self,
        rec: &TraceRecord,
        name: impl Fn(u32) -> &'n str,
    ) -> io::Result<()> {
        self.records += 1;
        let dst = name(rec.dst);

        // --- JSONL line ---------------------------------------------------
        let mut line = std::mem::take(&mut self.line);
        line.clear();
        let _ = write!(line, "{{\"t\":{}", rec.t_ps);
        match rec.kind {
            TRACE_DELIVER => {
                let _ = write!(line, ",\"k\":\"deliver\",\"src\":");
                write_json_str(&mut line, name(rec.src));
                let _ = write!(line, ",\"dst\":");
                write_json_str(&mut line, dst);
                let _ = write!(line, ",\"port\":{}", rec.port);
            }
            TRACE_SCHED => {
                let _ = write!(line, ",\"k\":\"sched\",\"src\":");
                write_json_str(&mut line, name(rec.src));
                let _ = write!(line, ",\"dst\":");
                write_json_str(&mut line, dst);
                let _ = write!(line, ",\"port\":{},\"at\":{}", rec.port, rec.aux);
            }
            TRACE_CLOCK => {
                let _ = write!(line, ",\"k\":\"clock\",\"dst\":");
                write_json_str(&mut line, dst);
                let _ = write!(line, ",\"cycle\":{}", rec.aux);
            }
            _ => {
                let _ = write!(line, ",\"k\":\"mark\",\"dst\":");
                write_json_str(&mut line, dst);
                let _ = write!(line, ",\"label\":");
                write_json_str(&mut line, rec.label);
                let _ = write!(line, ",\"v\":{}", rec.aux);
            }
        }
        line.push_str("}\n");
        self.jsonl.write_all(line.as_bytes())?;

        // --- Chrome trace_event mirror ------------------------------------
        let (tid, fresh) = self.tid(dst);
        if fresh {
            line.clear();
            let _ = write!(
                line,
                "{}{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":",
                if self.chrome_first { "" } else { "," },
            );
            self.chrome_first = false;
            write_json_str(&mut line, dst);
            line.push_str("}}");
            self.chrome.write_all(line.as_bytes())?;
        }
        line.clear();
        let _ = write!(
            line,
            "{}{{\"name\":",
            if self.chrome_first { "" } else { "," }
        );
        self.chrome_first = false;
        let evt_name: &str = match rec.kind {
            TRACE_DELIVER => "deliver",
            TRACE_SCHED => "sched",
            TRACE_CLOCK => "clock",
            _ => rec.label,
        };
        write_json_str(&mut line, evt_name);
        let _ = write!(
            line,
            ",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":"
        );
        write_us(&mut line, rec.t_ps);
        match rec.kind {
            TRACE_DELIVER | TRACE_SCHED => {
                let _ = write!(line, ",\"args\":{{\"src\":");
                write_json_str(&mut line, name(rec.src));
                let _ = write!(line, ",\"port\":{}}}", rec.port);
            }
            TRACE_CLOCK => {
                let _ = write!(line, ",\"args\":{{\"cycle\":{}}}", rec.aux);
            }
            _ => {
                let _ = write!(line, ",\"args\":{{\"v\":{}}}", rec.aux);
            }
        }
        line.push('}');
        self.chrome.write_all(line.as_bytes())?;
        self.line = line;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.jsonl.flush()?;
        if !self.chrome_done {
            self.chrome_done = true;
            self.chrome.write_all(b"]}\n")?;
        }
        self.chrome.flush()
    }
}

/// Derived path for the Chrome mirror of a JSONL trace: the last extension
/// is replaced with `chrome.json` (`t.jsonl` → `t.chrome.json`).
pub fn chrome_trace_path(trace: &Path) -> PathBuf {
    let mut p = trace.to_path_buf();
    p.set_extension("chrome.json");
    p
}

/// Minimal JSON string escaping (component names and labels are plain
/// identifiers in practice, but stay correct for anything).
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Exact decimal rendering of picoseconds as microseconds (Chrome `ts`),
/// with no float round-trip: `1234567 ps` → `1.234567`.
fn write_us(out: &mut String, ps: u64) {
    let whole = ps / 1_000_000;
    let frac = ps % 1_000_000;
    if frac == 0 {
        let _ = write!(out, "{whole}");
    } else {
        let mut f = format!("{frac:06}");
        while f.ends_with('0') {
            f.pop();
        }
        let _ = write!(out, "{whole}.{f}");
    }
}

// ---------------------------------------------------------------------------
// Pillar 2: periodic stats sampling

/// Identifies one tracked statistic in a [`StatsSeries`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesKey {
    pub owner: String,
    pub name: String,
}

/// One sample: state of every tracked stat at sim-time boundary `t_ps`,
/// reflecting all events strictly before the boundary. `counter_deltas[i]`
/// is the increment of counter `i` since the previous sample (delta
/// encoding); accumulators record their running count and mean.
///
/// Stats registered after a sample was taken extend the key tables; earlier
/// points simply carry shorter vectors (decode as zero / absent).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesPoint {
    pub t_ps: u64,
    pub counter_deltas: Vec<u64>,
    pub accum_counts: Vec<u64>,
    pub accum_means: Vec<f64>,
}

/// A serializable time series of periodic stat samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsSeries {
    pub interval_ps: u64,
    pub counters: Vec<SeriesKey>,
    pub accumulators: Vec<SeriesKey>,
    pub points: Vec<SeriesPoint>,
}

impl StatsSeries {
    /// Decode the delta-encoded counter `(owner, name)` back into absolute
    /// `(t_ps, value)` pairs. Returns `None` if the counter was never
    /// tracked.
    pub fn counter_series(&self, owner: &str, name: &str) -> Option<Vec<(u64, u64)>> {
        let idx = self
            .counters
            .iter()
            .position(|k| k.owner == owner && k.name == name)?;
        let mut acc = 0u64;
        Some(
            self.points
                .iter()
                .map(|p| {
                    acc += p.counter_deltas.get(idx).copied().unwrap_or(0);
                    (p.t_ps, acc)
                })
                .collect(),
        )
    }

    /// Mean of accumulator `(owner, name)` at each sample boundary (`None`
    /// entries where it had no samples yet).
    pub fn mean_series(&self, owner: &str, name: &str) -> Option<Vec<(u64, Option<f64>)>> {
        let idx = self
            .accumulators
            .iter()
            .position(|k| k.owner == owner && k.name == name)?;
        Some(
            self.points
                .iter()
                .map(|p| {
                    let mean = match (p.accum_counts.get(idx), p.accum_means.get(idx)) {
                        (Some(&n), Some(&m)) if n > 0 => Some(m),
                        _ => None,
                    };
                    (p.t_ps, mean)
                })
                .collect(),
        )
    }
}

/// Engine-side sampling state.
pub(crate) struct Sampler {
    interval: u64,
    next: u64,
    /// Registry indices backing `series.counters` / `series.accumulators`.
    counter_ids: Vec<usize>,
    accum_ids: Vec<usize>,
    /// Last absolute counter values, for delta encoding.
    prev: Vec<u64>,
    /// How many registry entries have been classified into the id tables.
    scanned: usize,
    series: StatsSeries,
}

impl Sampler {
    fn new(interval_ps: u64) -> Sampler {
        Sampler {
            interval: interval_ps,
            next: interval_ps,
            counter_ids: Vec::new(),
            accum_ids: Vec::new(),
            prev: Vec::new(),
            scanned: 0,
            series: StatsSeries {
                interval_ps,
                ..StatsSeries::default()
            },
        }
    }

    /// Called with the time of the event about to be delivered: emits a
    /// sample for every boundary `<=` that time, so each sample sees exactly
    /// the events strictly before its boundary.
    #[inline]
    pub fn observe(&mut self, t_ps: u64, stats: &StatsRegistry) {
        while self.next <= t_ps {
            let at = self.next;
            self.take(at, stats);
            self.next = self.next.saturating_add(self.interval);
        }
    }

    /// Pick up stats registered since the last sample.
    fn sync_keys(&mut self, stats: &StatsRegistry) {
        let all = stats.stats();
        while self.scanned < all.len() {
            let s = &all[self.scanned];
            match &s.kind {
                StatKind::Counter { .. } => {
                    self.counter_ids.push(self.scanned);
                    self.prev.push(0);
                    self.series.counters.push(SeriesKey {
                        owner: s.owner.clone(),
                        name: s.name.clone(),
                    });
                }
                StatKind::Accumulator { .. } => {
                    self.accum_ids.push(self.scanned);
                    self.series.accumulators.push(SeriesKey {
                        owner: s.owner.clone(),
                        name: s.name.clone(),
                    });
                }
                StatKind::Histogram { .. } => {}
            }
            self.scanned += 1;
        }
    }

    fn take(&mut self, t_ps: u64, stats: &StatsRegistry) {
        self.sync_keys(stats);
        let all = stats.stats();
        let mut point = SeriesPoint {
            t_ps,
            counter_deltas: Vec::with_capacity(self.counter_ids.len()),
            accum_counts: Vec::with_capacity(self.accum_ids.len()),
            accum_means: Vec::with_capacity(self.accum_ids.len()),
        };
        for (slot, &id) in self.counter_ids.iter().enumerate() {
            let cur = match &all[id].kind {
                StatKind::Counter { count } => *count,
                _ => 0,
            };
            point.counter_deltas.push(cur - self.prev[slot]);
            self.prev[slot] = cur;
        }
        for &id in &self.accum_ids {
            if let StatKind::Accumulator { count, mean, .. } = &all[id].kind {
                point.accum_counts.push(*count);
                point.accum_means.push(if *count > 0 { *mean } else { 0.0 });
            } else {
                point.accum_counts.push(0);
                point.accum_means.push(0.0);
            }
        }
        self.series.points.push(point);
    }

    /// Emit any boundaries still due plus one closing sample at `t_ps`
    /// (inclusive of every event), so the decoded series reconciles with
    /// the final stats snapshot.
    pub fn finish(&mut self, t_ps: u64, stats: &StatsRegistry) {
        self.observe(t_ps, stats);
        self.take(t_ps, stats);
    }

    pub fn into_series(self) -> StatsSeries {
        self.series
    }

    /// Capture the full sampler cursor for a checkpoint, so a restored run
    /// continues the series exactly (including delta-encoding baselines and
    /// the late-registration scan position).
    pub(crate) fn save(&self) -> crate::snapshot::SamplerSnap {
        crate::snapshot::SamplerSnap {
            interval: self.interval,
            next: self.next,
            counter_ids: self.counter_ids.iter().map(|&i| i as u64).collect(),
            accum_ids: self.accum_ids.iter().map(|&i| i as u64).collect(),
            prev: self.prev.clone(),
            scanned: self.scanned as u64,
            series: self.series.clone(),
        }
    }

    /// Rebuild a sampler from a checkpointed cursor.
    pub(crate) fn restore(snap: &crate::snapshot::SamplerSnap) -> Sampler {
        Sampler {
            interval: snap.interval,
            next: snap.next,
            counter_ids: snap.counter_ids.iter().map(|&i| i as usize).collect(),
            accum_ids: snap.accum_ids.iter().map(|&i| i as usize).collect(),
            prev: snap.prev.clone(),
            scanned: snap.scanned as usize,
            series: snap.series.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Pillar 3: engine self-profiling

/// Wallclock profile of one engine run, carried in
/// [`SimReport`](crate::engine::SimReport) when `--profile` is on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Per-component handler costs (only components that handled events).
    pub components: Vec<ComponentProfile>,
    /// Peak pending-event-queue depth observed (max over ranks).
    pub queue_depth_hwm: u64,
    /// Same-time delivery batches executed (summed over ranks). Each batch
    /// is one drain of the queue's current time instant.
    #[serde(default)]
    pub delivery_batches: u64,
    /// Largest single delivery batch observed (max over ranks).
    #[serde(default)]
    pub max_batch_events: u64,
    /// Parallel-engine sync metrics; empty for serial runs.
    #[serde(default)]
    pub ranks: Vec<RankSyncProfile>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentProfile {
    pub name: String,
    /// Events + clock ticks handled.
    pub events: u64,
    /// Total wallclock nanoseconds inside this component's handlers.
    pub total_ns: u64,
    /// Slowest single handler invocation, nanoseconds.
    pub max_ns: u64,
}

/// Null-message-sync behavior of one parallel rank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankSyncProfile {
    pub rank: u32,
    /// Announcement rounds executed.
    pub sync_rounds: u64,
    /// Batches sent to neighbors (events and/or EOT news).
    pub batches_sent: u64,
    /// Batches carrying no events — pure null messages.
    pub null_batches_sent: u64,
    /// Cross-rank events shipped.
    pub events_sent: u64,
    /// Pure-null announcements suppressed by adaptive sync (the EOT gain
    /// was below the pairwise lookahead while the rank was busy).
    #[serde(default)]
    pub barriers_skipped: u64,
    /// EOT jumps of at least the pairwise lookahead announced immediately —
    /// each one hands the neighbor a whole widened epoch in one message.
    #[serde(default)]
    pub epochs_widened: u64,
    /// Times the rank blocked on its inbox with nothing safe to process.
    #[serde(default)]
    pub stall_rounds: u64,
    /// Wallclock nanoseconds spent blocked waiting for neighbor input.
    pub stall_ns: u64,
}

impl fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queue depth high-watermark: {}", self.queue_depth_hwm)?;
        writeln!(
            f,
            "delivery batches: {} (largest {})",
            self.delivery_batches, self.max_batch_events
        )?;
        let mut comps: Vec<&ComponentProfile> = self.components.iter().collect();
        comps.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        writeln!(
            f,
            "{:<24} {:>12} {:>14} {:>10}",
            "component", "events", "total_us", "max_us"
        )?;
        for c in comps.iter().take(20) {
            writeln!(
                f,
                "{:<24} {:>12} {:>14.1} {:>10.1}",
                c.name,
                c.events,
                c.total_ns as f64 / 1e3,
                c.max_ns as f64 / 1e3
            )?;
        }
        if comps.len() > 20 {
            writeln!(f, "... {} more components", comps.len() - 20)?;
        }
        for r in &self.ranks {
            writeln!(
                f,
                "rank {}: {} sync rounds, {} batches ({} pure nulls), {} events sent, \
                 {} barriers skipped, {} epochs widened, {} stall rounds ({:.1} ms stalled)",
                r.rank,
                r.sync_rounds,
                r.batches_sent,
                r.null_batches_sent,
                r.events_sent,
                r.barriers_skipped,
                r.epochs_widened,
                r.stall_rounds,
                r.stall_ns as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

/// Engine-side profiling counters (dense by component id).
pub(crate) struct Profiler {
    events: Vec<u64>,
    total_ns: Vec<u64>,
    max_ns: Vec<u64>,
    queue_hwm: u64,
    batches: u64,
    max_batch: u64,
}

impl Profiler {
    fn new(n_comps: usize) -> Profiler {
        Profiler {
            events: vec![0; n_comps],
            total_ns: vec![0; n_comps],
            max_ns: vec![0; n_comps],
            queue_hwm: 0,
            batches: 0,
            max_batch: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, comp: u32, ns: u64) {
        let i = comp as usize;
        if i < self.events.len() {
            self.events[i] += 1;
            self.total_ns[i] += ns;
            if ns > self.max_ns[i] {
                self.max_ns[i] = ns;
            }
        }
    }

    #[inline]
    pub fn note_depth(&mut self, depth: u64) {
        if depth > self.queue_hwm {
            self.queue_hwm = depth;
        }
    }

    /// Record one same-time delivery batch of `events` deliveries.
    #[inline]
    pub fn note_batch(&mut self, events: u64) {
        self.batches += 1;
        if events > self.max_batch {
            self.max_batch = events;
        }
    }

    pub fn into_profile(self, names: &[String]) -> EngineProfile {
        let components = self
            .events
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| ComponentProfile {
                name: names.get(i).cloned().unwrap_or_else(|| format!("#{i}")),
                events: n,
                total_ns: self.total_ns[i],
                max_ns: self.max_ns[i],
            })
            .collect();
        EngineProfile {
            components,
            queue_depth_hwm: self.queue_hwm,
            delivery_batches: self.batches,
            max_batch_events: self.max_batch,
            ranks: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Run manifest

/// Reproducibility manifest written alongside telemetry outputs: what was
/// run, with which configuration, and what it produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    pub schema: String,
    /// The CLI invocation, joined.
    pub command: String,
    /// FNV-1a hash (hex) of the canonicalized configuration.
    pub config_hash: String,
    pub fidelity: String,
    pub quick: bool,
    /// Distinct RNG seeds used by engine runs.
    pub seeds: Vec<u64>,
    pub wall_seconds: f64,
    pub engine_runs: u64,
    pub events: u64,
    pub clock_ticks: u64,
    pub trace_records: u64,
    pub trace_path: Option<String>,
    pub chrome_trace_path: Option<String>,
    pub stats_series_path: Option<String>,
    /// Partition strategy used for parallel runs (`block`, `round-robin`,
    /// `latency-cut`); absent for serial-only runs.
    #[serde(default)]
    pub partition: Option<String>,
    /// Profile dump fed back in via `--partition-profile`, if any.
    #[serde(default)]
    pub partition_profile: Option<String>,
    /// Engine-profile dump written by this run (feed it back in via
    /// `--partition-profile` to close the measure→repartition loop).
    #[serde(default)]
    pub profile_path: Option<String>,
    /// Snapshots written by this run (`--checkpoint-every`), in capture
    /// order.
    #[serde(default)]
    pub checkpoints: Vec<CheckpointEntry>,
    /// Canonical FNV-1a state hash of the simulation's final state.
    /// Present whenever checkpointing was requested — including on a
    /// `restore` run, so restored and uninterrupted manifests can be
    /// diffed directly.
    #[serde(default)]
    pub final_state_hash: Option<String>,
    /// Whether build-time graph specialization (fusion, chain flattening,
    /// queue auto-selection) was enabled for this invocation; `None` on
    /// manifests written before the knob existed.
    #[serde(default)]
    pub specialize: Option<bool>,
    /// Queue backend the (serial) engine actually ran on — `heap`,
    /// `indexed`, or `heap->indexed` when the auto queue migrated. Absent
    /// for multi-engine invocations like experiment sweeps.
    #[serde(default)]
    pub queue_backend: Option<String>,
    /// Free-form one-line observations about the run, one per entry — e.g.
    /// the adaptive-sync counters of each parallel rank. Greppable without
    /// parsing the profile dump.
    #[serde(default)]
    pub notes: Vec<String>,
}

/// One checkpoint recorded in a [`RunManifest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// Which engine run wrote it (e.g. `serial`, `r2`).
    pub label: String,
    pub time_ps: u64,
    pub path: String,
    pub state_hash: String,
}

pub const MANIFEST_SCHEMA: &str = "sst-telemetry-manifest-v1";

/// Schema tag of the `<base>.stats.json` sampled-series document.
pub const SERIES_SCHEMA: &str = "sst-stats-series-v1";

// ---------------------------------------------------------------------------
// Profile dumps: the measure half of the measure→repartition→rerun loop

pub const PROFILE_SCHEMA: &str = "sst-engine-profile-v1";

/// One labeled engine profile inside a [`ProfileDump`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledProfile {
    pub label: String,
    pub profile: EngineProfile,
}

/// On-disk collection of engine profiles from one telemetry run. Written as
/// `<base>.profile.json`; read back by `--partition-profile` to weight the
/// partitioner by observed per-component event counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileDump {
    pub schema: String,
    pub profiles: Vec<LabeledProfile>,
}

impl ProfileDump {
    pub fn new(profiles: &[(String, EngineProfile)]) -> ProfileDump {
        ProfileDump {
            schema: PROFILE_SCHEMA.to_string(),
            profiles: profiles
                .iter()
                .map(|(label, profile)| LabeledProfile {
                    label: label.clone(),
                    profile: profile.clone(),
                })
                .collect(),
        }
    }

    /// Collapse every contained profile into one: per-component event counts
    /// and handler time are summed by name (first-seen order preserved), so a
    /// dump holding several engine runs still yields stable partition
    /// weights. Sync metrics are dropped — they describe the *old* partition.
    pub fn merged(&self) -> EngineProfile {
        let mut order: Vec<String> = Vec::new();
        let mut by_name: Vec<ComponentProfile> = Vec::new();
        let mut merged = EngineProfile::default();
        for lp in &self.profiles {
            let p = &lp.profile;
            merged.queue_depth_hwm = merged.queue_depth_hwm.max(p.queue_depth_hwm);
            merged.delivery_batches += p.delivery_batches;
            merged.max_batch_events = merged.max_batch_events.max(p.max_batch_events);
            for c in &p.components {
                match order.iter().position(|n| n == &c.name) {
                    Some(i) => {
                        by_name[i].events += c.events;
                        by_name[i].total_ns += c.total_ns;
                        by_name[i].max_ns = by_name[i].max_ns.max(c.max_ns);
                    }
                    None => {
                        order.push(c.name.clone());
                        by_name.push(c.clone());
                    }
                }
            }
        }
        merged.components = by_name;
        merged
    }
}

/// FNV-1a 64-bit hash, for config fingerprints in manifests.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical 16-hex-digit rendering of the FNV-1a config fingerprint.
/// Every consumer of config-addressed storage — run manifests, the live
/// `/status` endpoint, the sweep result cache — must derive keys through
/// this one helper so the addressing scheme can never silently drift.
pub fn config_hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

/// The config hash for a CLI invocation, in the canonical form
/// `sst <command>|fidelity=<fidelity>|quick=<quick>`. Shared between the
/// manifest written at exit and the hash published live on `/status`, so a
/// scraper can correlate a running simulation with its manifest.
pub fn manifest_config_hash(
    command: &str,
    fidelity: impl std::fmt::Display,
    quick: bool,
) -> String {
    config_hash_hex(format!("sst {command}|fidelity={fidelity}|quick={quick}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_dump_merges_by_component_name() {
        let p1 = EngineProfile {
            components: vec![
                ComponentProfile {
                    name: "a".into(),
                    events: 10,
                    total_ns: 100,
                    max_ns: 7,
                },
                ComponentProfile {
                    name: "b".into(),
                    events: 2,
                    total_ns: 20,
                    max_ns: 9,
                },
            ],
            queue_depth_hwm: 4,
            delivery_batches: 3,
            max_batch_events: 2,
            ranks: Vec::new(),
        };
        let p2 = EngineProfile {
            components: vec![ComponentProfile {
                name: "a".into(),
                events: 5,
                total_ns: 50,
                max_ns: 30,
            }],
            queue_depth_hwm: 9,
            delivery_batches: 1,
            max_batch_events: 6,
            ranks: Vec::new(),
        };
        let dump = ProfileDump::new(&[("run1".to_string(), p1), ("run2".to_string(), p2)]);
        assert_eq!(dump.schema, PROFILE_SCHEMA);
        let m = dump.merged();
        assert_eq!(m.components.len(), 2);
        assert_eq!(m.components[0].name, "a");
        assert_eq!(m.components[0].events, 15);
        assert_eq!(m.components[0].max_ns, 30);
        assert_eq!(m.components[1].events, 2);
        assert_eq!(m.queue_depth_hwm, 9);
        assert_eq!(m.delivery_batches, 4);

        // And the on-disk form round-trips.
        let json = serde_json::to_value(&dump).unwrap().to_json_string_pretty();
        let back: ProfileDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back.profiles.len(), 2);
        assert_eq!(back.merged().components[0].events, 15);
    }

    #[test]
    fn series_delta_encoding_round_trips() {
        let mut reg = StatsRegistry::new();
        let c = reg.counter("comp", "hits");
        let mut s = Sampler::new(100);
        // boundary 100: 3 events before it
        reg.add(c, 3);
        s.observe(150, &reg); // first event at t=150 → sample at 100
        reg.add(c, 4);
        s.observe(250, &reg); // sample at 200 sees 3 (t<200 adds happened)...
        reg.add(c, 5);
        s.observe(460, &reg); // samples at 300 and 400
        let series = s.into_series();
        assert_eq!(series.interval_ps, 100);
        assert_eq!(series.points.len(), 4);
        let decoded = series.counter_series("comp", "hits").unwrap();
        let absolutes: Vec<u64> = decoded.iter().map(|&(_, v)| v).collect();
        let times: Vec<u64> = decoded.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![100, 200, 300, 400]);
        assert_eq!(absolutes, vec![3, 7, 12, 12]);
        // Deltas really are deltas:
        assert_eq!(series.points[0].counter_deltas, vec![3]);
        assert_eq!(series.points[1].counter_deltas, vec![4]);
        assert_eq!(series.points[2].counter_deltas, vec![5]);
        assert_eq!(series.points[3].counter_deltas, vec![0]);
    }

    #[test]
    fn series_handles_late_registration() {
        let mut reg = StatsRegistry::new();
        let c1 = reg.counter("a", "n");
        let mut s = Sampler::new(10);
        reg.add(c1, 1);
        s.observe(10, &reg);
        // Second counter appears after the first sample.
        let c2 = reg.counter("b", "n");
        reg.add(c2, 7);
        s.observe(20, &reg);
        let series = s.into_series();
        assert_eq!(series.counters.len(), 2);
        assert_eq!(series.points[0].counter_deltas.len(), 1);
        assert_eq!(series.points[1].counter_deltas.len(), 2);
        let b = series.counter_series("b", "n").unwrap();
        assert_eq!(b, vec![(10, 0), (20, 7)]);
    }

    #[test]
    fn series_accumulator_means() {
        let mut reg = StatsRegistry::new();
        let a = reg.accumulator("c", "lat");
        let mut s = Sampler::new(100);
        s.observe(100, &reg); // no samples yet
        reg.record(a, 4.0);
        reg.record(a, 6.0);
        s.observe(200, &reg);
        let series = s.into_series();
        let m = series.mean_series("c", "lat").unwrap();
        assert_eq!(m[0], (100, None));
        assert_eq!(m[1].0, 200);
        assert!((m[1].1.unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn series_serializes_and_parses() {
        let mut reg = StatsRegistry::new();
        let c = reg.counter("x", "n");
        reg.add(c, 2);
        let mut s = Sampler::new(50);
        s.observe(60, &reg);
        let series = s.into_series();
        let json = serde_json::to_string(&series).unwrap();
        let back: StatsSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter_series("x", "n").unwrap(), vec![(50, 2)]);
    }

    #[test]
    fn trace_kind_parsing() {
        assert_eq!(parse_trace_kind("deliver").unwrap(), TRACE_DELIVER);
        assert_eq!(parse_trace_kind("sched").unwrap(), TRACE_SCHED);
        assert_eq!(parse_trace_kind("clock").unwrap(), TRACE_CLOCK);
        assert_eq!(parse_trace_kind("mark").unwrap(), TRACE_MARK);
        assert!(parse_trace_kind("bogus").is_err());
    }

    #[test]
    fn component_filter_prefixes() {
        let names = Arc::new(vec![
            "core0".to_string(),
            "core1".to_string(),
            "l1.0".to_string(),
        ]);
        let pats = vec!["core*".to_string(), "l1.0".to_string()];
        let t = Tracer::new(
            names,
            Some(&pats),
            TRACE_ALL,
            TraceHandle {
                spec: TelemetrySpec::disabled(),
            },
            false,
        );
        assert!(t.comp_on(0) && t.comp_on(1) && t.comp_on(2));
        let names2 = Arc::new(vec!["core0".to_string(), "dram".to_string()]);
        let pats2 = vec!["core*".to_string()];
        let t2 = Tracer::new(
            names2,
            Some(&pats2),
            TRACE_ALL,
            TraceHandle {
                spec: TelemetrySpec::disabled(),
            },
            false,
        );
        assert!(t2.comp_on(0));
        assert!(!t2.comp_on(1));
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        let mut s = String::new();
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "1.234567");
        s.clear();
        write_us(&mut s, 2_000_000);
        assert_eq!(s, "2");
        s.clear();
        write_us(&mut s, 500);
        assert_eq!(s, "0.0005");
    }

    #[test]
    fn chrome_path_derivation() {
        assert_eq!(
            chrome_trace_path(Path::new("out/t.jsonl")),
            PathBuf::from("out/t.chrome.json")
        );
    }

    #[test]
    fn fnv_hash_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    /// Golden hashes: cache keys and manifest hashes are derived from these
    /// helpers, so any drift here silently invalidates every cache on disk.
    /// The constants were computed once from the FNV-1a reference definition.
    #[test]
    fn config_hash_golden() {
        assert_eq!(config_hash_hex(b""), "cbf29ce484222325");
        assert_eq!(config_hash_hex(b"sweep-point"), "07e2a95d371127fc");
        assert_eq!(
            manifest_config_hash("run", "des", false),
            "3cb2e466aa8a400a"
        );
        // The helper must agree with hashing the canonical string directly.
        assert_eq!(
            manifest_config_hash("run", "des", false),
            config_hash_hex(b"sst run|fidelity=des|quick=false")
        );
    }

    #[test]
    fn disabled_spec_builds_no_state() {
        let spec = TelemetrySpec::disabled();
        assert!(!spec.is_enabled());
        assert!(spec
            .make_state(Arc::new(vec!["a".to_string()]), false)
            .is_none());
        assert!(spec.finish().unwrap().is_none());
    }
}
