//! Live observability: in-flight metrics sampled while a run executes.
//!
//! The post-mortem telemetry pillars (tracing, stats series, profiling) only
//! speak after a run exits; this module is the *online* fourth pillar. A
//! [`LiveMetrics`] registry holds lock-light counters and gauges — plain
//! relaxed atomics — that the engines update once per delivery batch, and a
//! background sampler thread turns those raw values into rates, rank-skew
//! histograms, and watchdog liveness checks on a wallclock cadence.
//!
//! The hot-path contract matches tracing exactly: a disabled run carries an
//! `Option<Arc<RankLive>>` that is `None`, costing one discriminant check per
//! delivery batch and zero allocations. When enabled, updates are relaxed
//! atomic stores/adds — no locks, no syscalls — so `queue_compare` ratios and
//! bit-identical differential suites are unaffected either way.
//!
//! [`serve`] exposes the registry over a std-`TcpListener` HTTP thread (no
//! external dependencies): Prometheus text format at `/metrics`, a JSON run
//! summary at `/status`. This endpoint is the serving seam a future
//! `sst serve` daemon reuses.

use crate::time::SimTime;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag stamped into `/status` documents.
pub const STATUS_SCHEMA: &str = "sst-live-status-v1";

/// How often the sampler thread recomputes rates and runs watchdog checks.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(250);

/// Smoothing factor for the exponential moving averages behind
/// `events_per_second` and the sim-time rate that feeds the ETA.
const RATE_ALPHA: f64 = 0.3;

// ---------------------------------------------------------------------------
// Per-rank hot-path handle

/// The per-rank slice of the live registry. Engines hold an
/// `Option<Arc<RankLive>>` and call [`RankLive::batch`] once per delivery
/// batch; everything else is read by the sampler/server threads.
pub struct RankLive {
    pub rank: u32,
    now_ps: AtomicU64,
    events: AtomicU64,
    queue_depth: AtomicU64,
    stall_rounds: AtomicU64,
    null_batches: AtomicU64,
    batches_sent: AtomicU64,
    events_sent: AtomicU64,
    retired: AtomicBool,
    stalled: AtomicBool,
}

impl RankLive {
    fn new(rank: u32) -> RankLive {
        RankLive {
            rank,
            now_ps: AtomicU64::new(0),
            events: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            stall_rounds: AtomicU64::new(0),
            null_batches: AtomicU64::new(0),
            batches_sent: AtomicU64::new(0),
            events_sent: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
        }
    }

    /// Record a delivery batch: the rank's committed sim-time, how many
    /// events it just delivered, and its current pending-queue depth.
    #[inline]
    pub fn batch(&self, now: SimTime, delivered: u64, queue_depth: usize) {
        self.now_ps.store(now.0, Ordering::Relaxed);
        self.events.fetch_add(delivered, Ordering::Relaxed);
        self.queue_depth
            .store(queue_depth as u64, Ordering::Relaxed);
    }

    /// Mirror the conservative-sync counters (maintained as plain fields on
    /// the sync state) into the registry. The sources are monotonic, so
    /// absolute stores keep the exported counters monotonic too.
    #[inline]
    pub fn sync_counters(&self, stall_rounds: u64, nulls: u64, batches: u64, events_sent: u64) {
        self.stall_rounds.store(stall_rounds, Ordering::Relaxed);
        self.null_batches.store(nulls, Ordering::Relaxed);
        self.batches_sent.store(batches, Ordering::Relaxed);
        self.events_sent.store(events_sent, Ordering::Relaxed);
    }

    /// Mark the rank as retired (done with the current run segment); the
    /// watchdog stops expecting its GVT to advance.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Relaxed);
        self.stalled.store(false, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Transport counters

/// Per-backend transport counters, shared with every [`RankEndpoint`]
/// instance of that backend.
///
/// [`RankEndpoint`]: crate::parallel::transport::RankEndpoint
pub struct TransportLive {
    label: &'static str,
    batches: AtomicU64,
    bytes: AtomicU64,
}

impl TransportLive {
    fn new(label: &'static str) -> Arc<TransportLive> {
        Arc::new(TransportLive {
            label,
            batches: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Record one outbound batch of `bytes` payload. For the TCP backend the
    /// byte count is the exact wire-frame size; the shared-memory backend
    /// reports an in-memory estimate (events moved × event footprint).
    #[inline]
    pub fn sent(&self, bytes: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Skew histogram

/// Lock-free fixed-bucket histogram of per-rank lag behind the furthest
/// rank, in picoseconds. Bucket bounds are decades from 1 ns to 1 s.
struct SkewHistogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl SkewHistogram {
    fn new() -> SkewHistogram {
        // 1 ns, 10 ns, ... 1 s — plus the implicit +Inf bucket.
        let bounds: Vec<u64> = (3..=12).map(|p| 10u64.pow(p)).collect();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        SkewHistogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The registry

struct Rates {
    last: Option<(Instant, u64, u64)>,
    ev_per_sec: f64,
    ps_per_sec: f64,
}

/// The run-wide live registry. One per process; shared (`Arc`) between the
/// CLI, every engine the run spins up, the HTTP server thread, and the
/// sampler/watchdog thread.
pub struct LiveMetrics {
    start: Instant,
    manifest_hash: Mutex<String>,
    label: Mutex<String>,
    target_ps: AtomicU64,
    finished: AtomicBool,
    ranks: Mutex<Vec<Arc<RankLive>>>,
    shm: Arc<TransportLive>,
    tcp: Arc<TransportLive>,
    skew: SkewHistogram,
    rates: Mutex<Rates>,
}

impl std::fmt::Debug for LiveMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Params structs holding an `Arc<LiveMetrics>` derive Debug; the
        // registry itself is all atomics, so a marker is enough.
        f.write_str("LiveMetrics")
    }
}

/// Point-in-time view of one rank, as computed by [`LiveMetrics::sample`].
pub struct RankSnap {
    pub rank: u32,
    pub now_ps: u64,
    pub events: u64,
    pub queue_depth: u64,
    pub stall_rounds: u64,
    pub null_batches: u64,
    pub batches_sent: u64,
    pub events_sent: u64,
    pub lag_ps: u64,
    pub retired: bool,
    pub stalled: bool,
}

/// Point-in-time view of the whole registry.
pub struct LiveSnapshot {
    pub uptime_s: f64,
    pub events: u64,
    pub gvt_ps: u64,
    pub ev_per_sec: f64,
    pub ps_per_sec: f64,
    pub target_ps: u64,
    pub finished: bool,
    pub ranks: Vec<RankSnap>,
}

impl LiveSnapshot {
    /// Fraction of the bounded run completed, if a bound is known.
    pub fn progress(&self) -> Option<f64> {
        if self.target_ps == 0 {
            return None;
        }
        Some((self.gvt_ps as f64 / self.target_ps as f64).min(1.0))
    }

    /// Estimated wallclock seconds to completion from the sim-time rate.
    pub fn eta_seconds(&self) -> Option<f64> {
        if self.target_ps == 0 || self.ps_per_sec <= 0.0 || self.finished {
            return None;
        }
        Some(self.target_ps.saturating_sub(self.gvt_ps) as f64 / self.ps_per_sec)
    }
}

impl Default for LiveMetrics {
    fn default() -> Self {
        LiveMetrics::new()
    }
}

impl LiveMetrics {
    pub fn new() -> LiveMetrics {
        LiveMetrics {
            start: Instant::now(),
            manifest_hash: Mutex::new(String::new()),
            label: Mutex::new(String::new()),
            target_ps: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            ranks: Mutex::new(Vec::new()),
            shm: TransportLive::new("shm"),
            tcp: TransportLive::new("tcp"),
            skew: SkewHistogram::new(),
            rates: Mutex::new(Rates {
                last: None,
                ev_per_sec: 0.0,
                ps_per_sec: 0.0,
            }),
        }
    }

    /// Get-or-create the handle for `rank`. Called at engine start, never on
    /// the hot path, so the mutex is fine.
    pub fn rank(&self, rank: u32) -> Arc<RankLive> {
        let mut ranks = self.ranks.lock().unwrap();
        if let Some(r) = ranks.iter().find(|r| r.rank == rank) {
            return Arc::clone(r);
        }
        let r = Arc::new(RankLive::new(rank));
        ranks.push(Arc::clone(&r));
        ranks.sort_by_key(|r| r.rank);
        r
    }

    /// The shared counter block for a transport backend (`"tcp"`, else shm).
    pub fn transport(&self, label: &str) -> Arc<TransportLive> {
        match label {
            "tcp" => Arc::clone(&self.tcp),
            _ => Arc::clone(&self.shm),
        }
    }

    /// Stamp the run-manifest config hash surfaced in `/status`.
    pub fn set_manifest_hash(&self, hash: &str) {
        *self.manifest_hash.lock().unwrap() = hash.to_string();
    }

    /// Begin (or re-begin, for multi-engine experiments) a run segment:
    /// reset per-run gauges and the watchdog arming, keep counters
    /// accumulating.
    pub fn begin_run(&self, label: &str, bound: Option<SimTime>) {
        *self.label.lock().unwrap() = label.to_string();
        self.target_ps
            .store(bound.map(|t| t.0).unwrap_or(0), Ordering::Relaxed);
        self.finished.store(false, Ordering::Relaxed);
        for r in self.ranks.lock().unwrap().iter() {
            r.now_ps.store(0, Ordering::Relaxed);
            r.queue_depth.store(0, Ordering::Relaxed);
            r.retired.store(false, Ordering::Relaxed);
            r.stalled.store(false, Ordering::Relaxed);
        }
    }

    /// Mark the current run segment done; the watchdog stands down.
    pub fn note_finished(&self) {
        self.finished.store(true, Ordering::Relaxed);
        for r in self.ranks.lock().unwrap().iter() {
            r.retire();
        }
    }

    /// Compute a consistent snapshot and refresh the rate EMAs when enough
    /// wallclock has passed since the previous sample.
    pub fn sample(&self) -> LiveSnapshot {
        let ranks = self.ranks.lock().unwrap();
        let mut snaps: Vec<RankSnap> = ranks
            .iter()
            .map(|r| RankSnap {
                rank: r.rank,
                now_ps: r.now_ps.load(Ordering::Relaxed),
                events: r.events.load(Ordering::Relaxed),
                queue_depth: r.queue_depth.load(Ordering::Relaxed),
                stall_rounds: r.stall_rounds.load(Ordering::Relaxed),
                null_batches: r.null_batches.load(Ordering::Relaxed),
                batches_sent: r.batches_sent.load(Ordering::Relaxed),
                events_sent: r.events_sent.load(Ordering::Relaxed),
                lag_ps: 0,
                retired: r.retired.load(Ordering::Relaxed),
                stalled: r.stalled.load(Ordering::Relaxed),
            })
            .collect();
        drop(ranks);
        let max_now = snaps.iter().map(|r| r.now_ps).max().unwrap_or(0);
        let live_min = snaps.iter().filter(|r| !r.retired).map(|r| r.now_ps).min();
        let gvt_ps = live_min.unwrap_or(max_now);
        for s in &mut snaps {
            s.lag_ps = max_now.saturating_sub(s.now_ps);
        }
        let events: u64 = snaps.iter().map(|r| r.events).sum();

        let mut rates = self.rates.lock().unwrap();
        let now = Instant::now();
        match rates.last {
            Some((t0, ev0, gvt0)) => {
                let dt = now.duration_since(t0).as_secs_f64();
                if dt >= 0.05 {
                    let ev_rate = events.saturating_sub(ev0) as f64 / dt;
                    let ps_rate = gvt_ps.saturating_sub(gvt0) as f64 / dt;
                    rates.ev_per_sec = RATE_ALPHA * ev_rate + (1.0 - RATE_ALPHA) * rates.ev_per_sec;
                    rates.ps_per_sec = RATE_ALPHA * ps_rate + (1.0 - RATE_ALPHA) * rates.ps_per_sec;
                    rates.last = Some((now, events, gvt_ps));
                }
            }
            None => rates.last = Some((now, events, gvt_ps)),
        }
        LiveSnapshot {
            uptime_s: self.start.elapsed().as_secs_f64(),
            events,
            gvt_ps,
            ev_per_sec: rates.ev_per_sec,
            ps_per_sec: rates.ps_per_sec,
            target_ps: self.target_ps.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            ranks: snaps,
        }
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let snap = self.sample();
        let mut o = String::with_capacity(2048);
        let _ = writeln!(o, "# HELP sst_up Whether the simulator process is alive.");
        let _ = writeln!(o, "# TYPE sst_up gauge\nsst_up 1");
        let _ = writeln!(
            o,
            "# HELP sst_uptime_seconds Wallclock seconds since metrics started."
        );
        let _ = writeln!(o, "# TYPE sst_uptime_seconds gauge");
        let _ = writeln!(o, "sst_uptime_seconds {:.3}", snap.uptime_s);
        let _ = writeln!(
            o,
            "# HELP sst_run_finished Whether the current run segment has completed."
        );
        let _ = writeln!(o, "# TYPE sst_run_finished gauge");
        let _ = writeln!(o, "sst_run_finished {}", snap.finished as u8);
        let _ = writeln!(
            o,
            "# HELP sst_events_total Events and clock ticks delivered, all ranks."
        );
        let _ = writeln!(o, "# TYPE sst_events_total counter");
        let _ = writeln!(o, "sst_events_total {}", snap.events);
        let _ = writeln!(o, "# HELP sst_events_per_second Smoothed delivery rate.");
        let _ = writeln!(o, "# TYPE sst_events_per_second gauge");
        let _ = writeln!(o, "sst_events_per_second {:.1}", snap.ev_per_sec);
        let _ = writeln!(
            o,
            "# HELP sst_gvt_ps Committed global virtual time in picoseconds."
        );
        let _ = writeln!(o, "# TYPE sst_gvt_ps gauge");
        let _ = writeln!(o, "sst_gvt_ps {}", snap.gvt_ps);
        let _ = writeln!(
            o,
            "# HELP sst_target_ps Run bound in picoseconds (0 = run to exhaustion)."
        );
        let _ = writeln!(o, "# TYPE sst_target_ps gauge");
        let _ = writeln!(o, "sst_target_ps {}", snap.target_ps);
        let _ = writeln!(
            o,
            "# HELP sst_sim_time_per_second_ps Smoothed GVT advance rate."
        );
        let _ = writeln!(o, "# TYPE sst_sim_time_per_second_ps gauge");
        let _ = writeln!(o, "sst_sim_time_per_second_ps {:.0}", snap.ps_per_sec);

        let _ = writeln!(
            o,
            "# HELP sst_rank_sim_time_ps Per-rank committed sim-time."
        );
        let _ = writeln!(o, "# TYPE sst_rank_sim_time_ps gauge");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_sim_time_ps{{rank=\"{}\"}} {}",
                r.rank, r.now_ps
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_events_total Per-rank delivered events and ticks."
        );
        let _ = writeln!(o, "# TYPE sst_rank_events_total counter");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_events_total{{rank=\"{}\"}} {}",
                r.rank, r.events
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_queue_depth Per-rank pending-queue depth."
        );
        let _ = writeln!(o, "# TYPE sst_rank_queue_depth gauge");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_queue_depth{{rank=\"{}\"}} {}",
                r.rank, r.queue_depth
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_lag_ps Sim-time lag behind the furthest rank."
        );
        let _ = writeln!(o, "# TYPE sst_rank_lag_ps gauge");
        for r in &snap.ranks {
            let _ = writeln!(o, "sst_rank_lag_ps{{rank=\"{}\"}} {}", r.rank, r.lag_ps);
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_stall_rounds_total Sync rounds spent waiting with no work."
        );
        let _ = writeln!(o, "# TYPE sst_rank_stall_rounds_total counter");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_stall_rounds_total{{rank=\"{}\"}} {}",
                r.rank, r.stall_rounds
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_null_batches_total Pure null-message batches sent."
        );
        let _ = writeln!(o, "# TYPE sst_rank_null_batches_total counter");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_null_batches_total{{rank=\"{}\"}} {}",
                r.rank, r.null_batches
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_batches_total Event batches sent to neighbor ranks."
        );
        let _ = writeln!(o, "# TYPE sst_rank_batches_total counter");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_batches_total{{rank=\"{}\"}} {}",
                r.rank, r.batches_sent
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_events_sent_total Cross-rank events shipped."
        );
        let _ = writeln!(o, "# TYPE sst_rank_events_sent_total counter");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_events_sent_total{{rank=\"{}\"}} {}",
                r.rank, r.events_sent
            );
        }
        let _ = writeln!(
            o,
            "# HELP sst_rank_stalled Watchdog verdict: GVT stopped advancing."
        );
        let _ = writeln!(o, "# TYPE sst_rank_stalled gauge");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_stalled{{rank=\"{}\"}} {}",
                r.rank, r.stalled as u8
            );
        }
        let _ = writeln!(o, "# HELP sst_rank_retired Rank finished its run segment.");
        let _ = writeln!(o, "# TYPE sst_rank_retired gauge");
        for r in &snap.ranks {
            let _ = writeln!(
                o,
                "sst_rank_retired{{rank=\"{}\"}} {}",
                r.rank, r.retired as u8
            );
        }

        let _ = writeln!(
            o,
            "# HELP sst_transport_batches_total Batches pushed into a transport backend."
        );
        let _ = writeln!(o, "# TYPE sst_transport_batches_total counter");
        let _ = writeln!(
            o,
            "# HELP sst_transport_bytes_total Payload bytes pushed into a transport backend."
        );
        let _ = writeln!(o, "# TYPE sst_transport_bytes_total counter");
        for t in [&self.shm, &self.tcp] {
            let _ = writeln!(
                o,
                "sst_transport_batches_total{{transport=\"{}\"}} {}",
                t.label,
                t.batches.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                o,
                "sst_transport_bytes_total{{transport=\"{}\"}} {}",
                t.label,
                t.bytes.load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(
            o,
            "# HELP sst_rank_skew_ps Sampled per-rank lag behind the furthest rank."
        );
        let _ = writeln!(o, "# TYPE sst_rank_skew_ps histogram");
        let mut cumulative = 0u64;
        for (i, b) in self.skew.bounds.iter().enumerate() {
            cumulative += self.skew.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(o, "sst_rank_skew_ps_bucket{{le=\"{b}\"}} {cumulative}");
        }
        cumulative += self.skew.buckets[self.skew.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(o, "sst_rank_skew_ps_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            o,
            "sst_rank_skew_ps_sum {}",
            self.skew.sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            o,
            "sst_rank_skew_ps_count {}",
            self.skew.count.load(Ordering::Relaxed)
        );
        o
    }

    /// Render the `/status` JSON document.
    pub fn render_status(&self) -> String {
        let snap = self.sample();
        let mut o = String::with_capacity(512);
        o.push('{');
        let _ = write!(o, "\"schema\":\"{STATUS_SCHEMA}\"");
        let _ = write!(
            o,
            ",\"manifest_hash\":\"{}\"",
            self.manifest_hash.lock().unwrap()
        );
        let _ = write!(o, ",\"label\":\"{}\"", self.label.lock().unwrap());
        let _ = write!(o, ",\"uptime_seconds\":{:.3}", snap.uptime_s);
        let _ = write!(o, ",\"finished\":{}", snap.finished);
        let _ = write!(o, ",\"events\":{}", snap.events);
        let _ = write!(o, ",\"events_per_second\":{:.1}", snap.ev_per_sec);
        let _ = write!(o, ",\"gvt_ps\":{}", snap.gvt_ps);
        let _ = write!(o, ",\"target_ps\":{}", snap.target_ps);
        match snap.progress() {
            Some(p) => {
                let _ = write!(o, ",\"progress\":{:.4}", p);
            }
            None => o.push_str(",\"progress\":null"),
        }
        match snap.eta_seconds() {
            Some(eta) => {
                let _ = write!(o, ",\"eta_seconds\":{:.1}", eta);
            }
            None => o.push_str(",\"eta_seconds\":null"),
        }
        let _ = write!(o, ",\"sim_time_per_second_ps\":{:.0}", snap.ps_per_sec);
        let _ = write!(o, ",\"ranks\":{}", snap.ranks.len());
        let stalled: Vec<String> = snap
            .ranks
            .iter()
            .filter(|r| r.stalled)
            .map(|r| r.rank.to_string())
            .collect();
        let _ = write!(o, ",\"stalled_ranks\":[{}]", stalled.join(","));
        o.push('}');
        o
    }
}

// ---------------------------------------------------------------------------
// Watchdog

/// Rank-health watchdog policy: a non-retired rank whose committed sim-time
/// has not advanced for `stall_after` wallclock is reported as stalled.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogCfg {
    pub stall_after: Duration,
}

impl Default for WatchdogCfg {
    fn default() -> Self {
        WatchdogCfg {
            stall_after: Duration::from_secs(10),
        }
    }
}

struct WatchState {
    rank: u32,
    last_ps: u64,
    since: Instant,
    warned: bool,
}

/// One sampler/watchdog pass: feed the skew histogram and flip per-rank
/// stall verdicts, emitting structured warnings on transitions.
fn watchdog_pass(metrics: &LiveMetrics, cfg: &WatchdogCfg, states: &mut Vec<WatchState>) {
    let snap = metrics.sample();
    let active = !snap.finished && snap.ranks.iter().any(|r| !r.retired);
    for r in &snap.ranks {
        if active && !r.retired {
            metrics.skew.observe(r.lag_ps);
        }
        let st = match states.iter_mut().find(|s| s.rank == r.rank) {
            Some(s) => s,
            None => {
                states.push(WatchState {
                    rank: r.rank,
                    last_ps: r.now_ps,
                    since: Instant::now(),
                    warned: false,
                });
                continue;
            }
        };
        if r.now_ps != st.last_ps || r.retired || snap.finished {
            if st.warned && r.now_ps != st.last_ps {
                eprintln!(
                    "{{\"warn\":\"rank-recovered\",\"rank\":{},\"sim_time_ps\":{},\"gvt_ps\":{}}}",
                    r.rank, r.now_ps, snap.gvt_ps
                );
            }
            st.last_ps = r.now_ps;
            st.since = Instant::now();
            st.warned = false;
            if let Some(h) = metrics.rank_handle(r.rank) {
                h.stalled.store(false, Ordering::Relaxed);
            }
            continue;
        }
        let stuck = st.since.elapsed();
        if stuck >= cfg.stall_after && !st.warned {
            st.warned = true;
            if let Some(h) = metrics.rank_handle(r.rank) {
                h.stalled.store(true, Ordering::Relaxed);
            }
            eprintln!(
                "{{\"warn\":\"rank-stalled\",\"rank\":{},\"sim_time_ps\":{},\"gvt_ps\":{},\"stalled_for_s\":{:.1},\"stall_after_s\":{:.1}}}",
                r.rank,
                r.now_ps,
                snap.gvt_ps,
                stuck.as_secs_f64(),
                cfg.stall_after.as_secs_f64()
            );
        }
    }
}

impl LiveMetrics {
    fn rank_handle(&self, rank: u32) -> Option<Arc<RankLive>> {
        self.ranks
            .lock()
            .unwrap()
            .iter()
            .find(|r| r.rank == rank)
            .cloned()
    }
}

// ---------------------------------------------------------------------------
// HTTP endpoint

/// A running metrics endpoint: the HTTP accept thread plus the
/// sampler/watchdog thread. Dropping it shuts both down.
pub struct MetricsServer {
    /// The bound address — port 0 requests resolve here.
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and start
/// serving `/metrics` (Prometheus text) and `/status` (JSON) from `metrics`,
/// with `watchdog` liveness checks on a wallclock cadence.
pub fn serve(
    metrics: Arc<LiveMetrics>,
    addr: &str,
    watchdog: WatchdogCfg,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let stop = Arc::clone(&shutdown);
    let m = Arc::clone(&metrics);
    let accept = std::thread::Builder::new()
        .name("sst-metrics-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = handle_conn(stream, &m);
                }
            }
        })?;

    let stop = Arc::clone(&shutdown);
    let m = Arc::clone(&metrics);
    let sampler = std::thread::Builder::new()
        .name("sst-metrics-watchdog".into())
        .spawn(move || {
            let mut states: Vec<WatchState> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                watchdog_pass(&m, &watchdog, &mut states);
                std::thread::sleep(SAMPLE_INTERVAL);
            }
        })?;

    Ok(MetricsServer {
        addr: local,
        shutdown,
        accept: Some(accept),
        sampler: Some(sampler),
    })
}

impl MetricsServer {
    /// Stop both threads and wait for them.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_conn(stream: TcpStream, metrics: &LiveMetrics) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    let path = request.split_whitespace().nth(1).unwrap_or("/");
    // Drain the remaining request headers before responding.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics.render_prometheus(),
        ),
        "/status" | "/" => ("200 OK", "application/json", metrics.render_status()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found: try /metrics or /status\n".to_string(),
        ),
    };
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Scrape helper used by tests (and usable by tooling): GET `path` from a
/// running [`MetricsServer`] and return the response body.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: sst\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(response),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_registration_is_idempotent_and_sorted() {
        let m = LiveMetrics::new();
        let a = m.rank(2);
        let b = m.rank(0);
        let c = m.rank(2);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(b.rank, 0);
        let snap = m.sample();
        assert_eq!(
            snap.ranks.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn gvt_is_min_over_live_ranks_and_lag_tracks_max() {
        let m = LiveMetrics::new();
        let r0 = m.rank(0);
        let r1 = m.rank(1);
        r0.batch(SimTime(100), 5, 3);
        r1.batch(SimTime(40), 2, 1);
        let snap = m.sample();
        assert_eq!(snap.gvt_ps, 40);
        assert_eq!(snap.events, 7);
        assert_eq!(snap.ranks[1].lag_ps, 60);
        // A retired rank no longer holds GVT back.
        r1.retire();
        assert_eq!(m.sample().gvt_ps, 100);
    }

    #[test]
    fn progress_and_eta_need_a_target() {
        let m = LiveMetrics::new();
        let r = m.rank(0);
        r.batch(SimTime(500), 1, 0);
        assert!(m.sample().progress().is_none());
        m.begin_run("run", Some(SimTime(1000)));
        // begin_run resets gauges; re-advance.
        r.batch(SimTime(500), 1, 0);
        let snap = m.sample();
        assert_eq!(snap.progress(), Some(0.5));
    }

    #[test]
    fn prometheus_render_covers_per_rank_and_transport_metrics() {
        let m = LiveMetrics::new();
        let r = m.rank(0);
        r.batch(SimTime(1234), 10, 2);
        r.sync_counters(3, 4, 5, 6);
        m.transport("tcp").sent(128);
        let text = m.render_prometheus();
        assert!(text.contains("sst_events_total 10"));
        assert!(text.contains("sst_rank_sim_time_ps{rank=\"0\"} 1234"));
        assert!(text.contains("sst_rank_stall_rounds_total{rank=\"0\"} 3"));
        assert!(text.contains("sst_rank_null_batches_total{rank=\"0\"} 4"));
        assert!(text.contains("sst_transport_bytes_total{transport=\"tcp\"} 128"));
        assert!(text.contains("sst_rank_skew_ps_bucket{le=\"+Inf\"}"));
    }

    #[test]
    fn status_json_reports_progress_and_stalls() {
        let m = LiveMetrics::new();
        m.set_manifest_hash("abcd1234");
        m.begin_run("torus", Some(SimTime(2000)));
        m.rank(0).batch(SimTime(1000), 4, 0);
        let json = m.render_status();
        assert!(json.contains("\"schema\":\"sst-live-status-v1\""));
        assert!(json.contains("\"manifest_hash\":\"abcd1234\""));
        assert!(json.contains("\"progress\":0.5000"));
        assert!(json.contains("\"stalled_ranks\":[]"));
    }

    #[test]
    fn http_endpoint_serves_metrics_and_status() {
        let m = Arc::new(LiveMetrics::new());
        m.rank(0).batch(SimTime(77), 9, 1);
        let mut server = serve(Arc::clone(&m), "127.0.0.1:0", WatchdogCfg::default()).unwrap();
        let body = http_get(server.addr, "/metrics").unwrap();
        assert!(body.contains("sst_events_total 9"));
        let status = http_get(server.addr, "/status").unwrap();
        assert!(status.contains("\"events\":9"));
        let missing = http_get(server.addr, "/nope").unwrap();
        assert!(missing.contains("not found"));
        server.shutdown();
    }

    #[test]
    fn watchdog_flags_stuck_ranks_and_rearms_on_advance() {
        let m = LiveMetrics::new();
        let r = m.rank(0);
        r.batch(SimTime(10), 1, 0);
        let cfg = WatchdogCfg {
            stall_after: Duration::from_millis(0),
        };
        let mut states = Vec::new();
        // First pass seeds the state, second pass observes no advance.
        watchdog_pass(&m, &cfg, &mut states);
        watchdog_pass(&m, &cfg, &mut states);
        assert!(m.sample().ranks[0].stalled);
        // Advancing sim-time clears the verdict.
        r.batch(SimTime(20), 1, 0);
        watchdog_pass(&m, &cfg, &mut states);
        assert!(!m.sample().ranks[0].stalled);
        // A retired rank is never flagged.
        r.retire();
        watchdog_pass(&m, &cfg, &mut states);
        watchdog_pass(&m, &cfg, &mut states);
        assert!(!m.sample().ranks[0].stalled);
    }
}
