//! Topology-aware graph partitioning for the parallel engine.
//!
//! How the component graph is cut across ranks determines everything about
//! parallel performance: every cross-rank link costs null-message traffic,
//! and the *minimum* cross-rank link latency is the conservative lookahead
//! that bounds how far a rank may run ahead of its neighbors. Cutting a
//! low-latency link is therefore the worst possible move — it shrinks the
//! pairwise lookahead and multiplies synchronization rounds.
//!
//! Three strategies:
//!
//! * [`PartitionStrategy::Block`] — contiguous blocks in component-insertion
//!   order (the original behavior, kept as the baseline). Good when the
//!   builder adds locally-wired chains in order; blind to link latency.
//! * [`PartitionStrategy::RoundRobin`] — deal components out `0,1,…,n-1,0,…`.
//!   Maximally balanced and maximally cut; useful as a worst-case foil.
//! * [`PartitionStrategy::LatencyCut`] — a multilevel edge-cut minimizer.
//!   Each link gets cost `~1/latency` (see [`edge_cost`]), so the cheapest
//!   cut crosses the *slowest* links and the surviving lookahead is as large
//!   as possible. Node weights (uniform by default, or fed back from an
//!   [`EngineProfile`](crate::telemetry::EngineProfile)) keep rank loads
//!   balanced.
//!
//! The `LatencyCut` pipeline is the classic multilevel scheme: heavy-edge
//! matching coarsens the graph (merging along the lowest-latency links
//! first, so tightly-coupled chains become single nodes), a greedy
//! graph-growing pass partitions the coarsest graph, and a
//! Kernighan–Lin/Fiduccia–Mattheyses boundary refinement cleans up at every
//! uncoarsening step. Every loop visits nodes in index order and breaks
//! ties toward the smallest index, so the result is fully deterministic.

use crate::time::SimTime;
use std::fmt;
use std::str::FromStr;

/// How [`SystemBuilder`](crate::builder::SystemBuilder) assigns auto-placed
/// components to parallel ranks. Pinned components always keep their rank
/// under every strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous blocks in insertion order (baseline).
    #[default]
    Block,
    /// Deal components out cyclically.
    RoundRobin,
    /// Multilevel min-edge-cut with `1/latency` edge costs and
    /// weight-balanced ranks.
    LatencyCut,
}

impl PartitionStrategy {
    pub const ALL: &'static [PartitionStrategy] = &[
        PartitionStrategy::Block,
        PartitionStrategy::RoundRobin,
        PartitionStrategy::LatencyCut,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Block => "block",
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::LatencyCut => "latency-cut",
        }
    }
}

impl fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PartitionStrategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(PartitionStrategy::Block),
            "round-robin" | "roundrobin" => Ok(PartitionStrategy::RoundRobin),
            "latency-cut" | "latencycut" => Ok(PartitionStrategy::LatencyCut),
            other => Err(format!(
                "unknown partition strategy `{other}` (expected block|round-robin|latency-cut)"
            )),
        }
    }
}

/// Cost of cutting a link: proportional to `1/latency`, scaled so a 1 ps
/// link costs 10^12 and even multi-millisecond links cost at least 1.
/// Minimizing total cut cost therefore prefers cutting slow links, which
/// maximizes the surviving cross-rank lookahead.
pub fn edge_cost(latency: SimTime) -> u64 {
    (1_000_000_000_000 / latency.as_ps().max(1)).max(1)
}

/// What one partitioning looks like, for benches, manifests, and the pdes
/// experiment notes.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PartitionSummary {
    pub strategy: String,
    pub n_ranks: u32,
    pub components: u64,
    /// Links whose endpoints land on different ranks.
    pub cut_links: u64,
    pub total_links: u64,
    /// Sum of [`edge_cost`] over cut links (the objective `LatencyCut`
    /// minimizes).
    pub weighted_cut: u64,
    /// Sum of [`edge_cost`] over all links.
    pub total_edge_weight: u64,
    /// Minimum latency over cut links — the conservative lookahead. `None`
    /// when nothing is cut (ranks fully independent).
    pub min_lookahead_ps: Option<u64>,
    /// Component weight per rank (uniform weights count components).
    pub rank_loads: Vec<u64>,
    /// Component count per rank.
    pub rank_components: Vec<u64>,
    /// The rank of every component, by component id.
    pub assignments: Vec<u32>,
}

impl PartitionSummary {
    /// `max(rank load) / mean(rank load)`: 1.0 is perfect balance.
    pub fn load_imbalance(&self) -> f64 {
        let max = self.rank_loads.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = self.rank_loads.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max * self.n_ranks as f64 / sum as f64
    }
}

/// Assign a rank to every component. `pinned[i]` fixes component `i` (the
/// caller has already validated pins against `n_ranks`), `weights[i]` is its
/// load, and `edges` are `(a, b, cost)` with cost from [`edge_cost`].
pub(crate) fn assign(
    pinned: &[Option<u32>],
    weights: &[u64],
    edges: &[(u32, u32, u64)],
    n_ranks: u32,
    strategy: PartitionStrategy,
) -> Vec<u32> {
    debug_assert!(n_ranks > 0);
    debug_assert_eq!(pinned.len(), weights.len());
    if n_ranks == 1 {
        return vec![0; pinned.len()];
    }
    match strategy {
        PartitionStrategy::Block => block(pinned, n_ranks),
        PartitionStrategy::RoundRobin => round_robin(pinned, n_ranks),
        PartitionStrategy::LatencyCut => latency_cut(pinned, weights, edges, n_ranks),
    }
}

fn block(pinned: &[Option<u32>], n_ranks: u32) -> Vec<u32> {
    let auto_total = pinned.iter().filter(|p| p.is_none()).count();
    let per = auto_total.div_ceil(n_ranks as usize).max(1);
    let mut auto_idx = 0usize;
    pinned
        .iter()
        .map(|p| match p {
            Some(r) => *r,
            None => {
                let r = ((auto_idx / per) as u32).min(n_ranks - 1);
                auto_idx += 1;
                r
            }
        })
        .collect()
}

fn round_robin(pinned: &[Option<u32>], n_ranks: u32) -> Vec<u32> {
    let mut auto_idx = 0u32;
    pinned
        .iter()
        .map(|p| match p {
            Some(r) => *r,
            None => {
                let r = auto_idx % n_ranks;
                auto_idx += 1;
                r
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// LatencyCut: multilevel heavy-edge-matching + greedy growing + KL/FM refine

/// One level of the multilevel hierarchy: merged adjacency (parallel edges
/// summed), node weights, and pin constraints.
struct Graph {
    adj: Vec<Vec<(u32, u64)>>,
    weights: Vec<u64>,
    pinned: Vec<Option<u32>>,
}

impl Graph {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn from_edges(pinned: &[Option<u32>], weights: &[u64], edges: &[(u32, u32, u64)]) -> Graph {
        let n = pinned.len();
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for &(a, b, c) in edges {
            if a == b {
                continue; // self-loops never cross a cut
            }
            adj[a as usize].push((b, c));
            adj[b as usize].push((a, c));
        }
        for list in &mut adj {
            merge_parallel(list);
        }
        Graph {
            adj,
            weights: weights.iter().map(|&w| w.max(1)).collect(),
            pinned: pinned.to_vec(),
        }
    }
}

/// Sum duplicate `(neighbor, cost)` entries in place, leaving the list
/// sorted by neighbor index (deterministic iteration order).
fn merge_parallel(list: &mut Vec<(u32, u64)>) {
    list.sort_unstable_by_key(|&(j, _)| j);
    let mut out = 0usize;
    for i in 0..list.len() {
        if out > 0 && list[out - 1].0 == list[i].0 {
            list[out - 1].1 = list[out - 1].1.saturating_add(list[i].1);
        } else {
            list[out] = list[i];
            out += 1;
        }
    }
    list.truncate(out);
}

/// Two nodes may merge during coarsening unless they are pinned to
/// *different* ranks.
fn pins_compatible(a: Option<u32>, b: Option<u32>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

fn latency_cut(
    pinned: &[Option<u32>],
    weights: &[u64],
    edges: &[(u32, u32, u64)],
    n_ranks: u32,
) -> Vec<u32> {
    let g0 = Graph::from_edges(pinned, weights, edges);
    let coarse_target = (n_ranks as usize * 8).max(32);

    // Coarsen until small enough or matching stops shrinking the graph.
    let mut levels = vec![g0];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    while levels.last().unwrap().len() > coarse_target {
        let finer = levels.last().unwrap();
        let (coarser, map) = coarsen(finer);
        if coarser.len() * 20 > finer.len() * 19 {
            break; // < 5% shrink: give up, refine at this size
        }
        maps.push(map);
        levels.push(coarser);
    }

    // Initial partition on the coarsest level, then refine while projecting
    // back down the hierarchy.
    let coarsest = levels.last().unwrap();
    let mut part = grow_initial(coarsest, n_ranks);
    refine(coarsest, &mut part, n_ranks);
    for level in (0..maps.len()).rev() {
        let finer = &levels[level];
        let map = &maps[level];
        let mut fine_part = vec![0u32; finer.len()];
        for (i, p) in fine_part.iter_mut().enumerate() {
            *p = part[map[i] as usize];
        }
        part = fine_part;
        refine(finer, &mut part, n_ranks);
    }
    part
}

/// Heavy-edge matching: pair each unmatched node with its unmatched,
/// pin-compatible neighbor of maximum edge cost (so the lowest-latency links
/// collapse first and can never be cut at coarser levels). Returns the
/// coarser graph and the fine→coarse node map.
fn coarsen(g: &Graph) -> (Graph, Vec<u32>) {
    let n = g.len();
    const UNMATCHED: u32 = u32::MAX;
    let mut partner = vec![UNMATCHED; n];
    for i in 0..n {
        if partner[i] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for &(j, c) in &g.adj[i] {
            if partner[j as usize] != UNMATCHED
                || !pins_compatible(g.pinned[i], g.pinned[j as usize])
            {
                continue;
            }
            if best.is_none_or(|(bc, bj)| c > bc || (c == bc && j < bj)) {
                best = Some((c, j));
            }
        }
        match best {
            Some((_, j)) => {
                partner[i] = j;
                partner[j as usize] = i as u32;
            }
            None => partner[i] = i as u32,
        }
    }

    // Coarse ids in order of each pair's lower index.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for i in 0..n {
        if map[i] != UNMATCHED {
            continue;
        }
        map[i] = next;
        let j = partner[i] as usize;
        if j != i {
            map[j] = next;
        }
        next += 1;
    }

    let coarse_n = next as usize;
    let mut weights = vec![0u64; coarse_n];
    let mut pinned = vec![None; coarse_n];
    for (i, &c) in map.iter().enumerate().take(n) {
        let c = c as usize;
        weights[c] = weights[c].saturating_add(g.weights[i]);
        pinned[c] = pinned[c].or(g.pinned[i]);
    }
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); coarse_n];
    for i in 0..n {
        let ci = map[i];
        for &(j, c) in &g.adj[i] {
            let cj = map[j as usize];
            if ci != cj {
                adj[ci as usize].push((cj, c));
            }
        }
    }
    for list in &mut adj {
        merge_parallel(list);
    }
    (
        Graph {
            adj,
            weights,
            pinned,
        },
        map,
    )
}

/// Greedy graph growing: grow one rank's region at a time to its weight
/// target, always absorbing the frontier node with the strongest connection
/// to the region (ties to the smallest index). Pinned nodes seed their
/// rank's region; a rank with no seed starts from the heaviest-connected
/// unassigned node.
fn grow_initial(g: &Graph, n_ranks: u32) -> Vec<u32> {
    let n = g.len();
    const FREE: u32 = u32::MAX;
    let mut part = vec![FREE; n];
    let mut loads = vec![0u64; n_ranks as usize];
    for (i, p) in part.iter_mut().enumerate().take(n) {
        if let Some(r) = g.pinned[i] {
            *p = r;
            loads[r as usize] += g.weights[i];
        }
    }
    let total: u64 = g.weights.iter().sum();
    let ideal = total.div_ceil(n_ranks as u64).max(1);

    let mut conn = vec![0u64; n];
    for r in 0..n_ranks {
        if r == n_ranks - 1 {
            for p in part.iter_mut() {
                if *p == FREE {
                    *p = r;
                }
            }
            break;
        }
        // Seed the frontier from nodes already in r (pins).
        conn.iter_mut().for_each(|c| *c = 0);
        for i in 0..n {
            if part[i] != r {
                continue;
            }
            for &(j, c) in &g.adj[i] {
                if part[j as usize] == FREE {
                    conn[j as usize] = conn[j as usize].saturating_add(c);
                }
            }
        }
        while loads[r as usize] < ideal {
            // Strongest frontier node, else (fresh region / disconnected
            // remainder) the unassigned node with the largest incident cost.
            let mut best: Option<(u64, usize)> = None;
            for (i, p) in part.iter().enumerate() {
                if *p == FREE && conn[i] > 0 && best.is_none_or(|(bc, _)| conn[i] > bc) {
                    best = Some((conn[i], i));
                }
            }
            if best.is_none() {
                for (i, p) in part.iter().enumerate() {
                    if *p != FREE {
                        continue;
                    }
                    let incident: u64 = g.adj[i].iter().map(|&(_, c)| c).sum();
                    if best.is_none_or(|(bc, _)| incident > bc) {
                        best = Some((incident, i));
                    }
                }
            }
            let Some((_, pick)) = best else {
                break; // nothing left unassigned
            };
            part[pick] = r;
            loads[r as usize] += g.weights[pick];
            conn[pick] = 0;
            for &(j, c) in &g.adj[pick] {
                if part[j as usize] == FREE {
                    conn[j as usize] = conn[j as usize].saturating_add(c);
                }
            }
        }
    }
    part
}

const REFINE_PASSES: usize = 8;

/// KL/FM-style boundary refinement: repeatedly move nodes to the neighbor
/// rank they are most strongly connected to, when that strictly reduces the
/// weighted cut (or keeps it equal while strictly improving load balance),
/// under a `~10%` overload cap. Terminates because each move strictly
/// decreases `(cut, sum of squared loads)` lexicographically.
fn refine(g: &Graph, part: &mut [u32], n_ranks: u32) {
    let n = g.len();
    let nr = n_ranks as usize;
    let mut loads = vec![0u64; nr];
    let mut counts = vec![0u64; nr];
    for i in 0..n {
        loads[part[i] as usize] += g.weights[i];
        counts[part[i] as usize] += 1;
    }
    let total: u64 = loads.iter().sum();
    let cap = (total.saturating_mul(11))
        .div_ceil(10 * n_ranks as u64)
        .max(1);

    let mut d = vec![0u64; nr];
    for _ in 0..REFINE_PASSES {
        let mut moved = false;
        for i in 0..n {
            if g.pinned[i].is_some() || g.adj[i].is_empty() {
                continue;
            }
            let cur = part[i] as usize;
            if counts[cur] <= 1 {
                continue; // never empty a rank
            }
            d.iter_mut().for_each(|x| *x = 0);
            for &(j, c) in &g.adj[i] {
                d[part[j as usize] as usize] = d[part[j as usize] as usize].saturating_add(c);
            }
            let w = g.weights[i];
            let mut best: Option<(u64, usize)> = None;
            for (s, &ds) in d.iter().enumerate() {
                if s == cur || ds == 0 || loads[s].saturating_add(w) > cap {
                    continue;
                }
                if best.is_none_or(|(bc, _)| ds > bc) {
                    best = Some((ds, s));
                }
            }
            let Some((d_ext, s)) = best else {
                continue;
            };
            let d_int = d[cur];
            let balance_gain = loads[cur] > loads[s].saturating_add(w);
            if d_ext > d_int || (d_ext == d_int && balance_gain) {
                part[i] = s as u32;
                loads[cur] -= w;
                counts[cur] -= 1;
                loads[s] += w;
                counts[s] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> (Vec<Option<u32>>, Vec<u64>) {
        (vec![None; n], vec![1; n])
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for &s in PartitionStrategy::ALL {
            assert_eq!(s.name().parse::<PartitionStrategy>().unwrap(), s);
        }
        assert!("bogus".parse::<PartitionStrategy>().is_err());
        assert_eq!(PartitionStrategy::default(), PartitionStrategy::Block);
    }

    #[test]
    fn edge_cost_prefers_fast_links() {
        assert!(edge_cost(SimTime::ns(1)) > edge_cost(SimTime::ns(20)));
        assert_eq!(edge_cost(SimTime::ms(5)), 200);
        assert_eq!(edge_cost(SimTime::ms(2000)), 1); // floor at >= 1 s
        assert_eq!(edge_cost(SimTime::ps(1)), 1_000_000_000_000);
    }

    #[test]
    fn block_matches_legacy_contiguous_split() {
        let (pinned, weights) = uniform(8);
        let ranks = assign(&pinned, &weights, &[], 4, PartitionStrategy::Block);
        assert_eq!(ranks, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn round_robin_deals_cyclically() {
        let (pinned, weights) = uniform(5);
        let ranks = assign(&pinned, &weights, &[], 2, PartitionStrategy::RoundRobin);
        assert_eq!(ranks, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn single_rank_short_circuits() {
        let pinned = vec![None, Some(0), None];
        let ranks = assign(&pinned, &[1, 1, 1], &[], 1, PartitionStrategy::LatencyCut);
        assert_eq!(ranks, vec![0, 0, 0]);
    }

    /// A chain of 8 nodes: seven 1 ns links and one 100 ns link in the
    /// middle. The minimum-weighted-cut bipartition must cut exactly the
    /// slow link.
    #[test]
    fn latency_cut_cuts_the_slow_link() {
        let (pinned, weights) = uniform(8);
        let mut edges = Vec::new();
        for i in 0..7u32 {
            let lat = if i == 3 {
                SimTime::ns(100)
            } else {
                SimTime::ns(1)
            };
            edges.push((i, i + 1, edge_cost(lat)));
        }
        let ranks = assign(&pinned, &weights, &edges, 2, PartitionStrategy::LatencyCut);
        for i in 0..4 {
            assert_eq!(ranks[i], ranks[0], "low half split: {ranks:?}");
        }
        for i in 4..8 {
            assert_eq!(ranks[i], ranks[4], "high half split: {ranks:?}");
        }
        assert_ne!(ranks[0], ranks[4], "slow link not cut: {ranks:?}");
    }

    #[test]
    fn latency_cut_balances_weighted_load() {
        // Star-free: 12 isolated pairs, one node of each pair heavy. Every
        // rank should end within the 10% overload cap of the ideal.
        let n = 24usize;
        let pinned = vec![None; n];
        let weights: Vec<u64> = (0..n).map(|i| if i % 2 == 0 { 5 } else { 1 }).collect();
        let edges: Vec<(u32, u32, u64)> = (0..12u32)
            .map(|p| (2 * p, 2 * p + 1, edge_cost(SimTime::ns(1))))
            .collect();
        let ranks = assign(&pinned, &weights, &edges, 4, PartitionStrategy::LatencyCut);
        let mut loads = [0u64; 4];
        for (i, &r) in ranks.iter().enumerate() {
            loads[r as usize] += weights[i];
        }
        let total: u64 = weights.iter().sum();
        let cap = (total * 11).div_ceil(10 * 4);
        for (r, &l) in loads.iter().enumerate() {
            assert!(l <= cap, "rank {r} overloaded: {loads:?} (cap {cap})");
            assert!(l > 0, "rank {r} empty: {loads:?}");
        }
    }

    #[test]
    fn pinned_nodes_keep_their_rank_under_every_strategy() {
        let pinned = vec![Some(2), None, Some(0), None, None, None];
        let weights = vec![1u64; 6];
        let edges: Vec<(u32, u32, u64)> = (0..5u32)
            .map(|i| (i, i + 1, edge_cost(SimTime::ns(1))))
            .collect();
        for &s in PartitionStrategy::ALL {
            let ranks = assign(&pinned, &weights, &edges, 3, s);
            assert_eq!(ranks[0], 2, "{s}: {ranks:?}");
            assert_eq!(ranks[2], 0, "{s}: {ranks:?}");
            assert!(ranks.iter().all(|&r| r < 3), "{s}: {ranks:?}");
        }
    }

    #[test]
    fn latency_cut_is_deterministic() {
        // A 6x6 torus with mixed latencies, partitioned twice.
        let side = 6u32;
        let n = (side * side) as usize;
        let (pinned, weights) = uniform(n);
        let idx = |x: u32, y: u32| (y % side) * side + (x % side);
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                edges.push((idx(x, y), idx(x + 1, y), edge_cost(SimTime::ns(20))));
                edges.push((idx(x, y), idx(x, y + 1), edge_cost(SimTime::ns(2))));
            }
        }
        let a = assign(&pinned, &weights, &edges, 4, PartitionStrategy::LatencyCut);
        let b = assign(&pinned, &weights, &edges, 4, PartitionStrategy::LatencyCut);
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r < 4));
    }

    /// On the asymmetric torus (fast vertical links, slow horizontal ones),
    /// `LatencyCut` must find a cheaper weighted cut than the contiguous
    /// block split, which slices row bands across the fast links.
    #[test]
    fn latency_cut_beats_block_on_asymmetric_torus() {
        let side = 8u32;
        let n = (side * side) as usize;
        let (pinned, weights) = uniform(n);
        let idx = |x: u32, y: u32| (y % side) * side + (x % side);
        let mut edges = Vec::new();
        for y in 0..side {
            for x in 0..side {
                edges.push((idx(x, y), idx(x + 1, y), edge_cost(SimTime::ns(20))));
                edges.push((idx(x, y), idx(x, y + 1), edge_cost(SimTime::ns(2))));
            }
        }
        let cut_of = |ranks: &[u32]| -> u64 {
            edges
                .iter()
                .filter(|&&(a, b, _)| ranks[a as usize] != ranks[b as usize])
                .map(|&(_, _, c)| c)
                .sum()
        };
        for n_ranks in [2u32, 4] {
            let block = assign(&pinned, &weights, &edges, n_ranks, PartitionStrategy::Block);
            let lcut = assign(
                &pinned,
                &weights,
                &edges,
                n_ranks,
                PartitionStrategy::LatencyCut,
            );
            assert!(
                cut_of(&lcut) < cut_of(&block),
                "ranks={n_ranks}: latency-cut {} !< block {}",
                cut_of(&lcut),
                cut_of(&block)
            );
        }
    }
}
