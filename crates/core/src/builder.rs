//! System construction.
//!
//! A [`SystemBuilder`] accumulates components, links, and clocks, then builds
//! either a serial [`Engine`](crate::engine::Engine) or a
//! [`ParallelEngine`](crate::parallel::ParallelEngine) over `n` ranks.
//!
//! Links must have non-zero latency: that latency is the *lookahead* that
//! makes conservative parallel simulation possible (events can never affect
//! the far side of a link sooner than the link latency).

use crate::component::Component;
use crate::event::{ClockId, ComponentId, PortId};
use crate::partition::{self, PartitionStrategy, PartitionSummary};
use crate::telemetry::EngineProfile;
use crate::time::{Frequency, SimTime};

/// Rank value meaning "let the builder choose".
pub const AUTO_RANK: u32 = u32::MAX;

pub(crate) struct CompSpec {
    pub name: String,
    pub comp: Box<dyn Component>,
    pub rank: u32,
    /// Load weight for partition balancing (default 1).
    pub weight: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkSpec {
    pub a: (ComponentId, PortId),
    pub b: (ComponentId, PortId),
    pub latency: SimTime,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ClockSpec {
    pub comp: ComponentId,
    pub period: SimTime,
}

/// Builder for a simulated system.
pub struct SystemBuilder {
    pub(crate) comps: Vec<CompSpec>,
    pub(crate) links: Vec<LinkSpec>,
    pub(crate) clocks: Vec<ClockSpec>,
    pub(crate) seed: u64,
    pub(crate) partition: PartitionStrategy,
    pub(crate) specialize: bool,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    pub fn new() -> Self {
        SystemBuilder {
            comps: Vec::new(),
            links: Vec::new(),
            clocks: Vec::new(),
            seed: 0xC0DE_5EED,
            partition: PartitionStrategy::default(),
            specialize: crate::specialize::default_enabled(),
        }
    }

    /// Enable or disable the build-time specialization pass (fusion + chain
    /// flattening; see [`crate::specialize`]) for engines built from this
    /// builder. Defaults to the process-wide setting
    /// ([`crate::specialize::default_enabled`]); tests comparing fused vs
    /// unfused runs should set this explicitly rather than flip the global.
    pub fn specialize(&mut self, on: bool) -> &mut Self {
        self.specialize = on;
        self
    }

    /// Choose the rank-partitioning strategy used by parallel builds (the
    /// default is [`PartitionStrategy::Block`], the contiguous split).
    pub fn partition_strategy(&mut self, strategy: PartitionStrategy) -> &mut Self {
        self.partition = strategy;
        self
    }

    /// The configured partitioning strategy.
    pub fn partitioning(&self) -> PartitionStrategy {
        self.partition
    }

    /// Set the load weight partition balancing uses for one component
    /// (default 1, i.e. balance component counts). Zero is clamped to 1.
    pub fn set_weight(&mut self, comp: ComponentId, weight: u64) -> &mut Self {
        self.comps[comp.0 as usize].weight = weight.max(1);
        self
    }

    /// Feed a prior run's [`EngineProfile`] back in as partition weights:
    /// each component named in the profile gets its handled-event count as
    /// its load weight (event counts are deterministic across reruns, unlike
    /// handler wallclock, so the resulting partition is too). Returns how
    /// many components matched by name — the measure→repartition→rerun loop.
    pub fn apply_profile_weights(&mut self, profile: &EngineProfile) -> usize {
        let mut matched = 0usize;
        for c in &mut self.comps {
            if let Some(p) = profile.components.iter().find(|p| p.name == c.name) {
                c.weight = p.events.max(1);
                matched += 1;
            }
        }
        matched
    }

    /// Set the global RNG seed (default is a fixed constant, so unseeded
    /// simulations are still reproducible).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Add a component with automatic rank placement.
    pub fn add(&mut self, name: impl Into<String>, comp: impl Component + 'static) -> ComponentId {
        self.add_on_rank(name, comp, AUTO_RANK)
    }

    /// Add a component pinned to a specific parallel rank. (Serial builds
    /// ignore the pin.)
    pub fn add_on_rank(
        &mut self,
        name: impl Into<String>,
        comp: impl Component + 'static,
        rank: u32,
    ) -> ComponentId {
        self.add_boxed(name.into(), Box::new(comp), rank)
    }

    /// Add an already-boxed component (the [`LazySystem`] materialization
    /// path, where components arrive as trait objects).
    pub fn add_boxed(&mut self, name: String, comp: Box<dyn Component>, rank: u32) -> ComponentId {
        let id = ComponentId(self.comps.len() as u32);
        assert!(
            !self.comps.iter().any(|c| c.name == name),
            "duplicate component name `{name}`"
        );
        self.comps.push(CompSpec {
            name,
            comp,
            rank,
            weight: 1,
        });
        id
    }

    /// Eagerly materialize a [`LazySystem`] into a regular builder. This
    /// deliberately defeats the streaming construction path (O(n) boxed
    /// components and links are built up front), so it is only suitable for
    /// small instances — its purpose is differential testing: a lazy build
    /// and the materialized build of the same topology must be bit-identical.
    pub fn materialize(sys: &dyn LazySystem) -> SystemBuilder {
        let mut b = SystemBuilder::new();
        b.seed(sys.seed());
        b.specialize(sys.specialize());
        for i in 0..sys.component_count() {
            b.add_boxed(sys.component_name(i), sys.create(i), AUTO_RANK);
        }
        sys.for_each_link(&mut |l| {
            b.link(l.a, l.b, l.latency);
        });
        b
    }

    /// Connect two ports with a bidirectional link of the given latency.
    /// Panics on zero latency, dangling component ids, or double-linked
    /// ports — all wiring bugs that must fail fast.
    pub fn link(
        &mut self,
        a: (ComponentId, PortId),
        b: (ComponentId, PortId),
        latency: SimTime,
    ) -> &mut Self {
        assert!(
            latency > SimTime::ZERO,
            "link latency must be non-zero (it provides the parallel lookahead)"
        );
        for &(c, p) in [&a, &b] {
            assert!(
                (c.0 as usize) < self.comps.len(),
                "link references unknown component {c}"
            );
            assert!(
                !self.links.iter().any(|l| l.a == (c, p) || l.b == (c, p)),
                "port {p:?} of {c} is already linked"
            );
        }
        assert!(a.0 != b.0 || a.1 != b.1, "cannot link a port to itself");
        self.links.push(LinkSpec { a, b, latency });
        self
    }

    /// Register a clock on a component. Returns the `ClockId` the component
    /// will see in `on_clock` and may pass to `resume_clock`.
    pub fn clock(&mut self, comp: ComponentId, freq: Frequency) -> ClockId {
        assert!((comp.0 as usize) < self.comps.len());
        let id = ClockId(self.clocks.len() as u32);
        self.clocks.push(ClockSpec {
            comp,
            period: freq.period(),
        });
        id
    }

    /// Register a clock by explicit period.
    pub fn clock_period(&mut self, comp: ComponentId, period: SimTime) -> ClockId {
        assert!((comp.0 as usize) < self.comps.len());
        assert!(period > SimTime::ZERO);
        let id = ClockId(self.clocks.len() as u32);
        self.clocks.push(ClockSpec { comp, period });
        id
    }

    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Resolve final rank assignments for `n_ranks` partitions using the
    /// configured [`PartitionStrategy`]. Pinned components keep their rank
    /// under every strategy; a pin outside `0..n_ranks` is a wiring bug and
    /// panics (it used to be silently wrapped, which moved components to
    /// ranks nobody asked for).
    pub(crate) fn resolve_ranks(&self, n_ranks: u32) -> Vec<u32> {
        let pinned: Vec<Option<u32>> = self
            .comps
            .iter()
            .map(|c| {
                if c.rank == AUTO_RANK {
                    None
                } else {
                    assert!(
                        c.rank < n_ranks,
                        "component `{}` is pinned to rank {}, but the run has only \
                         {n_ranks} rank(s) (valid ranks: 0..={}); pinned ranks are \
                         never remapped — fix the pin or raise the rank count",
                        c.name,
                        c.rank,
                        n_ranks - 1
                    );
                    Some(c.rank)
                }
            })
            .collect();
        let weights: Vec<u64> = self.comps.iter().map(|c| c.weight).collect();
        let edges: Vec<(u32, u32, u64)> = self
            .links
            .iter()
            .map(|l| (l.a.0 .0, l.b.0 .0, partition::edge_cost(l.latency)))
            .collect();
        partition::assign(&pinned, &weights, &edges, n_ranks, self.partition)
    }

    /// Describe the partition this builder would produce for `n_ranks`
    /// ranks: cut-link counts, the weighted cut, the surviving lookahead,
    /// and per-rank loads.
    pub fn partition_summary(&self, n_ranks: u32) -> PartitionSummary {
        let ranks = self.resolve_ranks(n_ranks);
        self.summary_for(&ranks, n_ranks)
    }

    pub(crate) fn summary_for(&self, ranks: &[u32], n_ranks: u32) -> PartitionSummary {
        let mut cut_links = 0u64;
        let mut weighted_cut = 0u64;
        let mut total_edge_weight = 0u64;
        let mut min_lookahead: Option<SimTime> = None;
        for l in &self.links {
            let cost = partition::edge_cost(l.latency);
            total_edge_weight = total_edge_weight.saturating_add(cost);
            if ranks[l.a.0 .0 as usize] != ranks[l.b.0 .0 as usize] {
                cut_links += 1;
                weighted_cut = weighted_cut.saturating_add(cost);
                min_lookahead = Some(match min_lookahead {
                    Some(cur) if cur < l.latency => cur,
                    _ => l.latency,
                });
            }
        }
        let mut rank_loads = vec![0u64; n_ranks as usize];
        let mut rank_components = vec![0u64; n_ranks as usize];
        for (i, c) in self.comps.iter().enumerate() {
            rank_loads[ranks[i] as usize] += c.weight;
            rank_components[ranks[i] as usize] += 1;
        }
        PartitionSummary {
            strategy: self.partition.to_string(),
            n_ranks,
            components: self.comps.len() as u64,
            cut_links,
            total_links: self.links.len() as u64,
            weighted_cut,
            total_edge_weight,
            min_lookahead_ps: min_lookahead.map(|t| t.as_ps()),
            rank_loads,
            rank_components,
            assignments: ranks.to_vec(),
        }
    }

    /// Minimum latency over links that cross ranks; `None` if no link
    /// crosses (ranks are then fully independent).
    pub(crate) fn lookahead(&self, ranks: &[u32]) -> Option<SimTime> {
        self.links
            .iter()
            .filter(|l| ranks[l.a.0 .0 as usize] != ranks[l.b.0 .0 as usize])
            .map(|l| l.latency)
            .min()
    }

    /// Per-pair lookahead matrix: `m[r][s]` is the minimum latency over
    /// links joining ranks `r` and `s` — the tightest bound on how soon an
    /// event sent by `r` can arrive at `s` — or `None` when no link joins
    /// them (the pair never exchanges events). Symmetric, since links are
    /// bidirectional.
    pub(crate) fn pairwise_lookahead(
        &self,
        ranks: &[u32],
        n_ranks: u32,
    ) -> Vec<Vec<Option<SimTime>>> {
        let n = n_ranks as usize;
        let mut m = vec![vec![None; n]; n];
        for l in &self.links {
            let ra = ranks[l.a.0 .0 as usize] as usize;
            let rb = ranks[l.b.0 .0 as usize] as usize;
            if ra != rb {
                for (x, y) in [(ra, rb), (rb, ra)] {
                    m[x][y] = Some(match m[x][y] {
                        Some(cur) if cur < l.latency => cur,
                        _ => l.latency,
                    });
                }
            }
        }
        m
    }
}

/// One undirected link streamed out of a [`LazySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyLink {
    pub a: (ComponentId, PortId),
    pub b: (ComponentId, PortId),
    pub latency: SimTime,
}

/// A system described *generatively* instead of stored.
///
/// A [`SystemBuilder`] holds every boxed component and link in memory, which
/// caps it well short of the 10⁵–10⁶-component graphs the parallel engine is
/// meant to host. A `LazySystem` instead computes names, components, and
/// links on demand from the topology parameters: construction streams each
/// component once (straight into its owning rank's dense slot table) and
/// each link once, so peak memory is proportional to the *local* partition,
/// not the whole graph.
///
/// Determinism contract: ids are dense `0..component_count()`, and
/// `component_name`/`create` must be pure functions of the index so that a
/// lazy build, a [`SystemBuilder::materialize`] build, and a serial run all
/// produce bit-identical simulations (per-component RNG streams are seeded
/// from `seed()` and the index, exactly like the eager path). Lazy systems
/// have no clocks: components drive themselves with initial events.
pub trait LazySystem {
    /// Total number of components in the topology.
    fn component_count(&self) -> u32;
    /// Unique, stable instance name for component `i`.
    fn component_name(&self, i: u32) -> String;
    /// Construct component `i`.
    fn create(&self, i: u32) -> Box<dyn Component>;
    /// Stream every undirected link exactly once.
    fn for_each_link(&self, f: &mut dyn FnMut(LazyLink));
    /// Topology-aware rank placement (default: contiguous block split, which
    /// matches [`PartitionStrategy::Block`] on the eager path).
    fn rank_of(&self, i: u32, n_ranks: u32) -> u32 {
        let n = self.component_count() as u64;
        let per = n.div_ceil(n_ranks as u64).max(1);
        ((i as u64 / per) as u32).min(n_ranks - 1)
    }
    /// Global RNG seed (defaults to the builder's fixed constant).
    fn seed(&self) -> u64 {
        0xC0DE_5EED
    }
    /// Whether engines built from this system run the build-time
    /// specialization pass (defaults to the process-wide setting).
    fn specialize(&self) -> bool {
        crate::specialize::default_enabled()
    }
}

/// Cross-rank metrics for a lazy system, from one pass over the link
/// stream: global minimum lookahead, the per-pair lookahead matrix, and a
/// [`PartitionSummary`] (weight 1 per component — lazy systems carry no
/// profile weights).
pub(crate) fn lazy_partition_metrics(
    sys: &dyn LazySystem,
    ranks: &[u32],
    n_ranks: u32,
) -> (Option<SimTime>, Vec<Vec<Option<SimTime>>>, PartitionSummary) {
    let n = n_ranks as usize;
    let mut pair_la = vec![vec![None; n]; n];
    let mut lookahead: Option<SimTime> = None;
    let mut cut_links = 0u64;
    let mut total_links = 0u64;
    let mut weighted_cut = 0u64;
    let mut total_edge_weight = 0u64;
    sys.for_each_link(&mut |l| {
        let ra = ranks[l.a.0 .0 as usize] as usize;
        let rb = ranks[l.b.0 .0 as usize] as usize;
        let cost = partition::edge_cost(l.latency);
        total_links += 1;
        total_edge_weight = total_edge_weight.saturating_add(cost);
        if ra != rb {
            cut_links += 1;
            weighted_cut = weighted_cut.saturating_add(cost);
            if lookahead.is_none_or(|cur| l.latency < cur) {
                lookahead = Some(l.latency);
            }
            for (x, y) in [(ra, rb), (rb, ra)] {
                let cell: &mut Option<SimTime> = &mut pair_la[x][y];
                if cell.is_none_or(|cur| l.latency < cur) {
                    *cell = Some(l.latency);
                }
            }
        }
    });
    let mut rank_components = vec![0u64; n];
    for &r in ranks {
        rank_components[r as usize] += 1;
    }
    let summary = PartitionSummary {
        strategy: "topology".to_string(),
        n_ranks,
        components: ranks.len() as u64,
        cut_links,
        total_links,
        weighted_cut,
        total_edge_weight,
        min_lookahead_ps: lookahead.map(|t| t.as_ps()),
        rank_loads: rank_components.clone(),
        rank_components,
        assignments: ranks.to_vec(),
    };
    (lookahead, pair_la, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, SimCtx};
    use crate::event::PayloadSlot;

    struct Dummy;
    impl Component for Dummy {
        fn on_event(&mut self, _p: PortId, _e: PayloadSlot, _c: &mut SimCtx<'_>) {}
    }

    #[test]
    fn add_and_link() {
        let mut b = SystemBuilder::new();
        let a = b.add("a", Dummy);
        let c = b.add("c", Dummy);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(1));
        assert_eq!(b.component_count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_name_panics() {
        let mut b = SystemBuilder::new();
        b.add("x", Dummy);
        b.add("x", Dummy);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_latency_panics() {
        let mut b = SystemBuilder::new();
        let a = b.add("a", Dummy);
        let c = b.add("c", Dummy);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_link_panics() {
        let mut b = SystemBuilder::new();
        let a = b.add("a", Dummy);
        let c = b.add("c", Dummy);
        let d = b.add("d", Dummy);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(1));
        b.link((a, PortId(0)), (d, PortId(0)), SimTime::ns(1));
    }

    #[test]
    fn rank_resolution_contiguous() {
        let mut b = SystemBuilder::new();
        for i in 0..8 {
            b.add(format!("c{i}"), Dummy);
        }
        let ranks = b.resolve_ranks(4);
        assert_eq!(ranks, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn pinned_ranks_respected() {
        let mut b = SystemBuilder::new();
        b.add_on_rank("a", Dummy, 1);
        b.add("b", Dummy);
        let ranks = b.resolve_ranks(2);
        assert_eq!(ranks[0], 1);
        assert_eq!(ranks[1], 0);
    }

    #[test]
    #[should_panic(expected = "pinned to rank 3")]
    fn pin_beyond_rank_count_is_a_loud_error() {
        let mut b = SystemBuilder::new();
        b.add_on_rank("a", Dummy, 3);
        b.add("b", Dummy);
        // Used to silently wrap to 3 % 2 == 1; now a build error.
        b.resolve_ranks(2);
    }

    #[test]
    fn strategy_threads_through_resolve() {
        let mut b = SystemBuilder::new();
        for i in 0..4 {
            b.add(format!("c{i}"), Dummy);
        }
        b.partition_strategy(crate::partition::PartitionStrategy::RoundRobin);
        assert_eq!(b.resolve_ranks(2), vec![0, 1, 0, 1]);
        assert_eq!(
            b.partitioning(),
            crate::partition::PartitionStrategy::RoundRobin
        );
    }

    #[test]
    fn summary_reports_cut_and_lookahead() {
        let mut b = SystemBuilder::new();
        let a = b.add_on_rank("a", Dummy, 0);
        let c = b.add_on_rank("c", Dummy, 0);
        let d = b.add_on_rank("d", Dummy, 1);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(1)); // internal
        b.link((a, PortId(1)), (d, PortId(0)), SimTime::ns(5)); // cut
        b.link((c, PortId(1)), (d, PortId(1)), SimTime::ns(3)); // cut
        let s = b.partition_summary(2);
        assert_eq!(s.cut_links, 2);
        assert_eq!(s.total_links, 3);
        assert_eq!(s.min_lookahead_ps, Some(SimTime::ns(3).as_ps()));
        assert_eq!(s.rank_components, vec![2, 1]);
        assert_eq!(s.assignments, vec![0, 0, 1]);
        assert!((s.load_imbalance() - 2.0 * 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn profile_weights_feed_partition_balancing() {
        use crate::telemetry::{ComponentProfile, EngineProfile};
        let mut b = SystemBuilder::new();
        for i in 0..4 {
            b.add(format!("c{i}"), Dummy);
        }
        let profile = EngineProfile {
            components: vec![
                ComponentProfile {
                    name: "c0".into(),
                    events: 30,
                    total_ns: 0,
                    max_ns: 0,
                },
                ComponentProfile {
                    name: "c3".into(),
                    events: 10,
                    total_ns: 0,
                    max_ns: 0,
                },
            ],
            ..EngineProfile::default()
        };
        assert_eq!(b.apply_profile_weights(&profile), 2);
        let s = b.partition_summary(2);
        // Weights: 30, 1, 1, 10 — block split keeps insertion order, so the
        // loads reflect the profile-fed weights.
        assert_eq!(s.rank_loads, vec![31, 11]);
    }

    #[test]
    fn lookahead_is_min_cross_rank_latency() {
        let mut b = SystemBuilder::new();
        let a = b.add_on_rank("a", Dummy, 0);
        let c = b.add_on_rank("c", Dummy, 0);
        let d = b.add_on_rank("d", Dummy, 1);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(1)); // same rank
        b.link((a, PortId(1)), (d, PortId(0)), SimTime::ns(5)); // cross
        b.link((c, PortId(1)), (d, PortId(1)), SimTime::ns(3)); // cross
        let ranks = b.resolve_ranks(2);
        assert_eq!(b.lookahead(&ranks), Some(SimTime::ns(3)));
    }

    #[test]
    fn pairwise_lookahead_minimum_per_pair() {
        let mut b = SystemBuilder::new();
        let a = b.add_on_rank("a", Dummy, 0);
        let c = b.add_on_rank("c", Dummy, 1);
        let d = b.add_on_rank("d", Dummy, 2);
        b.link((a, PortId(0)), (c, PortId(0)), SimTime::ns(5));
        b.link((a, PortId(1)), (c, PortId(1)), SimTime::ns(2));
        b.link((c, PortId(2)), (d, PortId(0)), SimTime::ns(9));
        let ranks = b.resolve_ranks(3);
        let m = b.pairwise_lookahead(&ranks, 3);
        assert_eq!(m[0][1], Some(SimTime::ns(2)));
        assert_eq!(m[1][0], Some(SimTime::ns(2)));
        assert_eq!(m[1][2], Some(SimTime::ns(9)));
        assert_eq!(m[0][2], None); // ranks 0 and 2 share no link
        assert_eq!(m[0][0], None); // same-rank links never cross
    }
}
