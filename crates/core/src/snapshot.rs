//! Engine checkpoint/restore: a versioned, canonical, hashable capture of
//! everything a simulation needs to resume bit-identically.
//!
//! A [`Snapshot`] records, at one instant of simulated time:
//!
//! - every component's serialized state ([`Component::save_state`]), RNG
//!   stream, and send-sequence cursor, sorted by component *name* so the
//!   document is independent of registration order;
//! - the full pending event queue — including in-flight payloads, encoded
//!   through the [payload codec registry](register_payload) — in the engine's
//!   total delivery order;
//! - clock activity flags, the raw statistics registry (sorted by
//!   `(owner, name)`, matching the canonical `StatsSnapshot` ordering), and
//!   the stats-sampler cursor when periodic sampling is on.
//!
//! Component ids, clock ids, and event tie-breaks are global and identical
//! across the serial and parallel engines (the partitioner preserves the
//! full id space on every rank), so events serialize their raw ids and a
//! parallel run's stitched snapshot is byte-identical to the serial
//! engine's at the same instant.
//!
//! Every sealed snapshot carries a canonical FNV-1a `state_hash` over its
//! own canonical JSON rendering with the hash, the [`Snapshot::origin`]
//! echo, and the sampler cursor cleared — so the hash is a pure function of
//! *simulation* state and two runs of the same system agree on it at every
//! checkpoint regardless of how they were invoked.
//!
//! # Payload codecs
//!
//! Event payloads are type-erased in the queue, so checkpointing needs a
//! way back to concrete types. Components call
//! [`register_payload::<T>("name")`](register_payload) in `setup()` for
//! every payload type they send; restore re-runs `setup()` before decoding,
//! so the codecs a snapshot needs are always registered by the time they
//! are looked up. Checkpointing a queue that holds an *unregistered*
//! payload type panics with the offending payload's debug rendering —
//! loudly, because silently dropping an in-flight event could never restore
//! bit-identically.

use crate::component::Component;
use crate::event::{
    ClockId, ComponentId, EventClass, EventKind, Payload, PayloadSlot, PortId, ScheduledEvent,
    TieBreak,
};
use crate::stats::Stat;
use crate::telemetry::{fnv1a, StatsSeries};
use crate::time::SimTime;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::any::TypeId;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Version tag carried by every snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "sst-snapshot-v1";

// ---------------------------------------------------------------------------
// Payload codec registry

struct Codec {
    name: String,
    encode: fn(PayloadSlot) -> (Value, PayloadSlot),
    decode: fn(&Value) -> Result<PayloadSlot, SerdeError>,
}

#[derive(Default)]
struct Registry {
    by_type: HashMap<TypeId, usize>,
    by_name: HashMap<String, usize>,
    codecs: Vec<Codec>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Register a payload codec for `P` under `name`. Idempotent: repeated
/// registration of the same type under the same name is free, so components
/// can (and should) call this unconditionally from `setup()`. Registering
/// two different types under one name, or one type under two names, is a
/// wiring bug and panics.
pub fn register_payload<P>(name: &str)
where
    P: Payload + Serialize + Deserialize,
{
    fn encode<P: Payload + Serialize>(slot: PayloadSlot) -> (Value, PayloadSlot) {
        let p = slot
            .try_downcast::<P>()
            .unwrap_or_else(|s| panic!("payload codec type mismatch: slot held {s:?}"));
        let v = p.to_value();
        (v, PayloadSlot::new(p))
    }
    fn decode<P: Payload + Deserialize>(v: &Value) -> Result<PayloadSlot, SerdeError> {
        Ok(PayloadSlot::new(P::from_value(v)?))
    }
    let mut reg = registry().lock().unwrap();
    let tid = TypeId::of::<P>();
    match (reg.by_type.get(&tid), reg.by_name.get(name)) {
        (Some(&i), Some(&j)) if i == j => {} // already registered, consistent
        (None, None) => {
            let idx = reg.codecs.len();
            reg.codecs.push(Codec {
                name: name.to_string(),
                encode: encode::<P>,
                decode: decode::<P>,
            });
            reg.by_type.insert(tid, idx);
            reg.by_name.insert(name.to_string(), idx);
        }
        (Some(&i), _) => panic!(
            "payload codec conflict: type already registered as `{}`, now `{name}`",
            reg.codecs[i].name
        ),
        (None, Some(_)) => {
            panic!("payload codec conflict: name `{name}` already bound to a different type")
        }
    }
}

/// Encode an in-queue payload through its registered codec. Returns the
/// codec name, the serialized value, and the (rebuilt) slot so the event can
/// go back into the queue untouched. Panics if no codec is registered for
/// the payload's type — see the module docs.
pub(crate) fn encode_payload(slot: PayloadSlot) -> (String, Value, PayloadSlot) {
    let tid = slot.payload_type_id();
    let reg = registry().lock().unwrap();
    let Some(&idx) = reg.by_type.get(&tid) else {
        panic!(
            "cannot checkpoint: no payload codec registered for in-queue payload {slot:?}; \
             call sst_core::snapshot::register_payload::<T>(\"name\") in the sender's setup()"
        );
    };
    let (name, encode) = (reg.codecs[idx].name.clone(), reg.codecs[idx].encode);
    drop(reg);
    let (value, slot) = encode(slot);
    (name, value, slot)
}

/// Decode a payload serialized by [`encode_payload`]. Panics on an unknown
/// codec name (the snapshot came from a system whose components never ran
/// `setup()` here) or a malformed payload value.
pub(crate) fn decode_payload(name: &str, value: &Value) -> PayloadSlot {
    let reg = registry().lock().unwrap();
    let Some(&idx) = reg.by_name.get(name) else {
        panic!(
            "cannot restore: no payload codec registered under `{name}`; \
             does the rebuilt system match the snapshotted one?"
        );
    };
    let decode = reg.codecs[idx].decode;
    drop(reg);
    decode(value).unwrap_or_else(|e| panic!("malformed `{name}` payload in snapshot: {e:?}"))
}

// ---------------------------------------------------------------------------
// Snapshot document

/// One component's captured state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentSnap {
    /// Instance name — the stable cross-shape key.
    pub name: String,
    /// Raw xoshiro256++ state of the per-component RNG stream.
    pub rng: Vec<u64>,
    /// Send-sequence cursor (the deterministic tie-break counter).
    pub send_seq: u64,
    /// Component-defined state from [`Component::save_state`].
    pub state: Value,
}

/// One pending event, in the engine's total delivery order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventSnap {
    pub time_ps: u64,
    /// 0 = clock tick, 1 = message (the [`EventClass`] delivery priority).
    pub class: u8,
    /// Tie-break: sending component id and its send sequence number.
    pub src: u32,
    pub seq: u64,
    pub target: u32,
    pub kind: EventKindSnap,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EventKindSnap {
    Message {
        port: u16,
        /// Registered payload codec name.
        codec: String,
        payload: Value,
    },
    Clock {
        clock: u32,
        cycle: u64,
    },
}

/// Stats-sampler cursor (serial runs with `--stats-interval` only), so a
/// restored run continues the series exactly where the checkpoint left it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplerSnap {
    pub interval: u64,
    pub next: u64,
    pub counter_ids: Vec<u64>,
    pub accum_ids: Vec<u64>,
    pub prev: Vec<u64>,
    pub scanned: u64,
    pub series: StatsSeries,
}

/// A complete engine checkpoint. See the module docs for the canonical
/// ordering guarantees that make the document — and its hash — identical
/// across engine shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub schema: String,
    /// Simulated time of the capture: the timestamp of the last delivered
    /// event (every queued event is strictly later).
    pub time_ps: u64,
    pub seed: u64,
    /// Events delivered so far (summed across ranks).
    pub events: u64,
    /// Clock ticks fired so far (summed across ranks).
    pub clock_ticks: u64,
    /// Per-component state, sorted by name.
    pub components: Vec<ComponentSnap>,
    /// Clock activity flags, indexed by global `ClockId`.
    pub clocks: Vec<bool>,
    /// The pending event queue in total delivery order.
    pub queue: Vec<EventSnap>,
    /// Raw statistics registry, sorted by `(owner, name)`.
    pub stats: Vec<Stat>,
    /// Sampler cursor; `None` when sampling is off (always, for parallel
    /// runs). Excluded from the state hash.
    #[serde(default)]
    pub sampler: Option<SamplerSnap>,
    /// How to rebuild the system this snapshot came from (CLI `restore`
    /// reads it). Opaque to the engine; excluded from the state hash.
    #[serde(default)]
    pub origin: Option<Value>,
    /// Canonical FNV-1a hash (hex) of the snapshot with `state_hash`,
    /// `origin`, and `sampler` cleared. Filled in by [`Snapshot::seal`].
    #[serde(default)]
    pub state_hash: String,
}

impl Snapshot {
    /// The canonical hash of the simulation state this snapshot captures.
    /// Invocation-specific fields (`origin`, `sampler`) and the hash slot
    /// itself are cleared first, so serial and parallel captures of the
    /// same instant hash identically.
    pub fn compute_state_hash(&self) -> String {
        let mut canon = self.clone();
        canon.state_hash = String::new();
        canon.origin = None;
        canon.sampler = None;
        format!(
            "{:016x}",
            fnv1a(canon.to_value().to_json_string().as_bytes())
        )
    }

    /// Fill in `state_hash`.
    pub fn seal(&mut self) {
        self.state_hash = self.compute_state_hash();
    }

    /// Pretty JSON rendering, for on-disk checkpoints.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_string_pretty()
    }

    /// Parse a snapshot document, rejecting unknown schema versions.
    pub fn from_json(text: &str) -> Result<Snapshot, SerdeError> {
        let snap: Snapshot = serde_json::from_str(text)?;
        if snap.schema != SNAPSHOT_SCHEMA {
            return Err(SerdeError::msg(format!(
                "unsupported snapshot schema `{}` (expected `{SNAPSHOT_SCHEMA}`)",
                snap.schema
            )));
        }
        Ok(snap)
    }
}

// ---------------------------------------------------------------------------
// Event encode/decode

/// Serialize one drained event and hand it back intact (payload round-trips
/// through its codec without being consumed).
pub(crate) fn encode_event(ev: ScheduledEvent) -> (EventSnap, ScheduledEvent) {
    let ScheduledEvent {
        time,
        class,
        tie,
        target,
        kind,
    } = ev;
    let (kind_snap, kind) = match kind {
        EventKind::Message { port, payload } => {
            let (codec, value, payload) = encode_payload(payload);
            (
                EventKindSnap::Message {
                    port: port.0,
                    codec,
                    payload: value,
                },
                EventKind::Message { port, payload },
            )
        }
        EventKind::ClockTick { clock, cycle } => (
            EventKindSnap::Clock {
                clock: clock.0,
                cycle,
            },
            EventKind::ClockTick { clock, cycle },
        ),
    };
    let snap = EventSnap {
        time_ps: time.as_ps(),
        class: class as u8,
        src: tie.src.0,
        seq: tie.seq,
        target: target.0,
        kind: kind_snap,
    };
    let ev = ScheduledEvent {
        time,
        class,
        tie,
        target,
        kind,
    };
    (snap, ev)
}

/// Rebuild a live event from its snapshot form.
pub(crate) fn decode_event(snap: &EventSnap) -> ScheduledEvent {
    let class = match snap.class {
        0 => EventClass::Clock,
        _ => EventClass::Message,
    };
    let kind = match &snap.kind {
        EventKindSnap::Message {
            port,
            codec,
            payload,
        } => EventKind::Message {
            port: PortId(*port),
            payload: decode_payload(codec, payload),
        },
        EventKindSnap::Clock { clock, cycle } => EventKind::ClockTick {
            clock: ClockId(*clock),
            cycle: *cycle,
        },
    };
    ScheduledEvent {
        time: SimTime(snap.time_ps),
        class,
        tie: TieBreak {
            src: ComponentId(snap.src),
            seq: snap.seq,
        },
        target: ComponentId(snap.target),
        kind,
    }
}

/// Capture one component's state triple. Shared by the serial and parallel
/// capture paths.
pub(crate) fn component_snap(
    name: &str,
    rng_state: [u64; 4],
    send_seq: u64,
    comp: &dyn Component,
) -> ComponentSnap {
    ComponentSnap {
        name: name.to_string(),
        rng: rng_state.to_vec(),
        send_seq,
        state: comp.save_state(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct TestTok {
        ttl: u32,
        tag: u64,
    }

    fn event(tok: TestTok) -> ScheduledEvent {
        ScheduledEvent {
            time: SimTime::ns(5),
            class: EventClass::Message,
            tie: TieBreak {
                src: ComponentId(3),
                seq: 17,
            },
            target: ComponentId(4),
            kind: EventKind::Message {
                port: PortId(2),
                payload: PayloadSlot::new(tok),
            },
        }
    }

    #[test]
    fn payload_codec_round_trips_and_is_idempotent() {
        register_payload::<TestTok>("snap.test-tok");
        register_payload::<TestTok>("snap.test-tok"); // idempotent
        let (snap, ev) = encode_event(event(TestTok { ttl: 9, tag: 0xAB }));
        // The original event survives encoding intact.
        let EventKind::Message { payload, .. } = ev.kind else {
            panic!("kind changed")
        };
        assert_eq!(
            payload.try_downcast::<TestTok>().unwrap(),
            TestTok { ttl: 9, tag: 0xAB }
        );
        // And the snapshot decodes to an equal event.
        let back = decode_event(&snap);
        assert_eq!(back.key(), (SimTime::ns(5), EventClass::Message, ev.tie));
        assert_eq!(back.target, ComponentId(4));
        let EventKind::Message { port, payload } = back.kind else {
            panic!("wrong kind")
        };
        assert_eq!(port, PortId(2));
        assert_eq!(
            payload.try_downcast::<TestTok>().unwrap(),
            TestTok { ttl: 9, tag: 0xAB }
        );
    }

    #[test]
    fn clock_events_round_trip_without_codecs() {
        let ev = ScheduledEvent {
            time: SimTime::ps(42),
            class: EventClass::Clock,
            tie: TieBreak {
                src: ComponentId(1),
                seq: 6,
            },
            target: ComponentId(1),
            kind: EventKind::ClockTick {
                clock: ClockId(6),
                cycle: 12,
            },
        };
        let (snap, _) = encode_event(ev);
        let back = decode_event(&snap);
        assert_eq!(back.class, EventClass::Clock);
        let EventKind::ClockTick { clock, cycle } = back.kind else {
            panic!("wrong kind")
        };
        assert_eq!((clock, cycle), (ClockId(6), 12));
    }

    #[test]
    #[should_panic(expected = "no payload codec registered")]
    fn unregistered_payload_panics_loudly() {
        #[derive(Debug)]
        struct Never(#[allow(dead_code)] u8);
        let _ = encode_payload(PayloadSlot::new(Never(1)));
    }

    #[test]
    fn state_hash_ignores_origin_and_sampler() {
        let mut snap = Snapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            time_ps: 100,
            seed: 7,
            events: 3,
            clock_ticks: 0,
            components: vec![],
            clocks: vec![],
            queue: vec![],
            stats: vec![],
            sampler: None,
            origin: None,
            state_hash: String::new(),
        };
        snap.seal();
        let h = snap.state_hash.clone();
        snap.origin = Some(Value::String("anything".into()));
        assert_eq!(snap.compute_state_hash(), h);
        snap.time_ps = 101;
        assert_ne!(snap.compute_state_hash(), h);
    }

    #[test]
    fn snapshot_json_round_trips_and_checks_schema() {
        let mut snap = Snapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            time_ps: 55,
            seed: 1,
            events: 2,
            clock_ticks: 3,
            components: vec![ComponentSnap {
                name: "a".into(),
                rng: vec![1, 2, 3, 4],
                send_seq: 9,
                state: Value::Null,
            }],
            clocks: vec![true, false],
            queue: vec![],
            stats: vec![],
            sampler: None,
            origin: None,
            state_hash: String::new(),
        };
        snap.seal();
        let text = snap.to_json_pretty();
        let back = Snapshot::from_json(&text).expect("round trip");
        assert_eq!(back.state_hash, snap.state_hash);
        assert_eq!(back.compute_state_hash(), snap.state_hash);
        assert_eq!(back.components[0].rng, vec![1, 2, 3, 4]);
        let bad = text.replace(SNAPSHOT_SCHEMA, "sst-snapshot-v999");
        assert!(Snapshot::from_json(&bad).is_err());
    }
}
