//! The component model.
//!
//! A [`Component`] is a state machine that reacts to delivered events and
//! clock ticks. It interacts with the rest of the simulated system *only*
//! through its [`SimCtx`]: sending events over ports, scheduling self events,
//! resuming clocks, recording statistics, and drawing deterministic random
//! numbers. This is the SST structural model: components never call each
//! other directly, which is what makes partitioned parallel simulation
//! possible.

use crate::event::{
    ClockId, ComponentId, EventClass, EventKind, Payload, PayloadSlot, PortId, ScheduledEvent,
    TieBreak, SELF_PORT,
};
use crate::stats::{StatId, StatsRegistry};
use crate::telemetry::Tracer;
use crate::time::SimTime;
use rand::rngs::SmallRng;

/// What a clock handler wants done after a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockAction {
    /// Keep ticking every cycle.
    Continue,
    /// Stop ticking; the component will call [`SimCtx::resume_clock`] when it
    /// has work again. Idle components therefore cost zero events.
    Suspend,
}

/// A simulated hardware/software component.
pub trait Component: Send {
    /// Called once at time zero, before any events. Register statistics and
    /// send initial events here.
    fn setup(&mut self, _ctx: &mut SimCtx<'_>) {}

    /// An event arrived on `port`.
    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>);

    /// A registered clock ticked. `cycle` is the absolute cycle index
    /// (time / period).
    fn on_clock(&mut self, _clock: ClockId, _cycle: u64, _ctx: &mut SimCtx<'_>) -> ClockAction {
        ClockAction::Suspend
    }

    /// Called once after the run completes.
    fn finish(&mut self, _ctx: &mut SimCtx<'_>) {}

    /// Port-name table: index = `PortId`. Used by the JSON config wiring.
    fn ports(&self) -> &'static [&'static str] {
        &[]
    }

    /// Serialize this component's mutable simulation state for a checkpoint.
    ///
    /// The default (`Value::Null`) is correct for components whose only
    /// state between events is setup-assigned wiring (stat ids, port
    /// counts): restore re-runs `setup` to rebuild those. Components with
    /// evolving state (caches, queues, cursors) must override this *and*
    /// [`Component::load_state`], walking any hash maps in a canonical key
    /// order so identical states serialize identically.
    fn save_state(&self) -> serde_json::Value {
        serde_json::Value::Null
    }

    /// Restore state captured by [`Component::save_state`]. Called after
    /// `setup`, so setup-assigned fields (registered `StatId`s, codecs)
    /// are live and must not be clobbered.
    fn load_state(&mut self, _state: &serde_json::Value) {}

    /// Opt into build-time fusion: homogeneous arrays of components whose
    /// `fuse_key` names the same concrete type collapse into one
    /// struct-of-arrays group with a monomorphized delivery loop. The only
    /// valid implementation is `Some(FuseKey::of::<Self>())`, paired with an
    /// override of [`Component::fuse_into`]. Fusion is semantically
    /// invisible — any component may opt in.
    fn fuse_key(&self) -> Option<crate::specialize::FuseKey> {
        None
    }

    /// Move `self` into `group` and return the member index. Implementations
    /// are always the single line `crate::specialize::absorb(group, *self)`
    /// (with the right crate path). Only called when [`Component::fuse_key`]
    /// returned `Some`; the default is therefore unreachable.
    fn fuse_into(self: Box<Self>, _group: &mut dyn crate::specialize::FusedGroup) -> u32 {
        unreachable!("fuse_into must be overridden when fuse_key is Some")
    }

    /// Opt into chain flattening by declaring this component a pure
    /// constant-latency forwarder. See [`ChainSpec`](crate::specialize::ChainSpec)
    /// for the behavioral contract this asserts.
    fn chain_forward(&self) -> Option<crate::specialize::ChainSpec> {
        None
    }
}

/// The far end of a link, as seen from one port.
#[derive(Debug, Clone, Copy)]
pub struct LinkEnd {
    pub target: ComponentId,
    pub port: PortId,
    pub latency: SimTime,
    /// Partition (rank) of the target component; used by the parallel engine
    /// to route the event to the right queue.
    pub rank: u32,
}

/// Where freshly sent events go. The serial engine pushes straight into its
/// queue; the parallel engine routes by rank. Public because it bounds the
/// queue parameter of [`EngineOn`](crate::engine::EngineOn); components
/// never see it directly.
pub trait EventSink {
    fn push(&mut self, ev: ScheduledEvent, target_rank: u32);
}

/// Where a slot's component state lives: its own box (the general case), or
/// a member of a fused struct-of-arrays group (after specialization). The
/// `Boxed` option is `None` only transiently, while the component is out on
/// loan to a delivery.
pub(crate) enum CompState {
    Boxed(Option<Box<dyn Component>>),
    Fused { group: u32, member: u32 },
}

/// Everything owned by the engine on behalf of one component. Fusion moves
/// only the component *state* into the group; identity (id, name), the RNG
/// stream, the send-sequence cursor, and the link table stay here so fused
/// members keep per-member determinism, snapshots, and attribution.
pub(crate) struct Slot {
    /// Global component id (slots are stored densely per rank, so the index
    /// into the slot table is *not* the id).
    pub id: ComponentId,
    pub name: String,
    pub comp: CompState,
    pub rng: SmallRng,
    pub send_seq: u64,
    /// Per-port link table; `None` = unconnected port.
    pub links: Vec<Option<LinkEnd>>,
    pub rank: u32,
}

/// Where a [`SimCtx`] pushes sent events. A two-variant enum rather than a
/// `&mut dyn EventSink`: the specialized delivery paths thread a concrete
/// queue handle through, so a fused member's `send` compiles to one
/// predictable branch plus an inlined concrete push instead of an indirect
/// call per event. Generic paths use the `Dyn` variant and behave exactly as
/// the trait object did.
pub(crate) enum CtxSink<'a> {
    /// Generic engines, instrumented delivery, parallel outboxes.
    Dyn(&'a mut dyn EventSink),
    /// Specialized delivery: a concrete queue backend plus the batch-instant
    /// straggler watch (see `specialize::BatchCtx`). A push at or before
    /// `now` is the only thing that can create a straggler mid-batch; the
    /// flag lets the batch loop skip the per-event queue peek until then.
    Instant {
        queue: crate::specialize::SinkRef<'a>,
        now: SimTime,
        pushed_at_now: &'a mut bool,
    },
}

impl CtxSink<'_> {
    #[inline]
    pub(crate) fn push(&mut self, ev: ScheduledEvent, target_rank: u32) {
        match self {
            CtxSink::Dyn(s) => s.push(ev, target_rank),
            CtxSink::Instant {
                queue,
                now,
                pushed_at_now,
            } => {
                **pushed_at_now |= ev.time <= *now;
                queue.push(ev, target_rank);
            }
        }
    }
}

/// The component's window into the simulation, passed to every handler.
pub struct SimCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) me: ComponentId,
    pub(crate) me_rank: u32,
    pub(crate) name: &'a str,
    pub(crate) links: &'a [Option<LinkEnd>],
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) send_seq: &'a mut u64,
    pub(crate) stats: &'a mut StatsRegistry,
    pub(crate) sink: CtxSink<'a>,
    pub(crate) clock_resumes: &'a mut Vec<ClockId>,
    /// Active event tracer; `None` unless telemetry tracing is on.
    pub(crate) tracer: Option<&'a mut Tracer>,
}

impl<'a> SimCtx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This component's id.
    #[inline]
    pub fn me(&self) -> ComponentId {
        self.me
    }

    /// This component's instance name.
    #[inline]
    pub fn name(&self) -> &str {
        self.name
    }

    /// Deterministic per-component RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Is `port` connected to a link?
    pub fn port_connected(&self, port: PortId) -> bool {
        self.links.get(port.0 as usize).is_some_and(|l| l.is_some())
    }

    /// Latency of the link on `port`, if connected.
    pub fn link_latency(&self, port: PortId) -> Option<SimTime> {
        self.links
            .get(port.0 as usize)
            .and_then(|l| l.as_ref())
            .map(|l| l.latency)
    }

    fn next_tie(&mut self) -> TieBreak {
        let seq = *self.send_seq;
        *self.send_seq += 1;
        TieBreak { src: self.me, seq }
    }

    /// Send `payload` over the link on `port`. Delivery happens after the
    /// link latency. Panics if the port is unconnected (a wiring bug).
    ///
    /// Small payloads (≤ [`INLINE_PAYLOAD_BYTES`](crate::event::INLINE_PAYLOAD_BYTES)
    /// bytes) travel inline in the event — no heap allocation.
    pub fn send<P: Payload>(&mut self, port: PortId, payload: P) {
        self.send_delayed(port, payload, SimTime::ZERO)
    }

    /// Send with an additional delay on top of the link latency (e.g. output
    /// serialization time).
    pub fn send_delayed<P: Payload>(&mut self, port: PortId, payload: P, extra: SimTime) {
        self.send_slot(port, PayloadSlot::new(payload), extra)
    }

    /// Monomorphization-free inner body of [`send_delayed`](Self::send_delayed).
    pub fn send_slot(&mut self, port: PortId, payload: PayloadSlot, extra: SimTime) {
        let link = self
            .links
            .get(port.0 as usize)
            .and_then(|l| l.as_ref())
            .unwrap_or_else(|| {
                panic!(
                    "component `{}` sent on unconnected port {:?}",
                    self.name, port
                )
            });
        let ev = ScheduledEvent {
            time: self.now + link.latency + extra,
            class: EventClass::Message,
            tie: self.next_tie(),
            target: link.target,
            kind: EventKind::Message {
                port: link.port,
                payload,
            },
        };
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.sched(
                self.now.as_ps(),
                self.me.0,
                link.target.0,
                link.port.0 as u32,
                ev.time.as_ps(),
            );
        }
        self.sink.push(ev, link.rank);
    }

    /// Schedule an event back to this component after `delay` (may be zero;
    /// zero-delay self events run after currently queued same-time events).
    pub fn schedule_self<P: Payload>(&mut self, delay: SimTime, payload: P) {
        let ev = ScheduledEvent {
            time: self.now + delay,
            class: EventClass::Message,
            tie: self.next_tie(),
            target: self.me,
            kind: EventKind::Message {
                port: SELF_PORT,
                payload: PayloadSlot::new(payload),
            },
        };
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.sched(
                self.now.as_ps(),
                self.me.0,
                self.me.0,
                SELF_PORT.0 as u32,
                ev.time.as_ps(),
            );
        }
        let rank = self.me_rank;
        self.sink.push(ev, rank);
    }

    /// Emit a component-defined trace point (a `mark` record) when tracing
    /// is active; free otherwise. `label` names the event (e.g. `"miss"`),
    /// `value` carries one datum (an address, a count, ...).
    #[inline]
    pub fn trace_mark(&mut self, label: &'static str, value: u64) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.mark(self.now.as_ps(), self.me.0, label, value);
        }
    }

    /// Ask the engine to restart a suspended clock. The first tick lands on
    /// the next period boundary strictly after `now`. Idempotent for already
    /// running clocks.
    pub fn resume_clock(&mut self, clock: ClockId) {
        self.clock_resumes.push(clock);
    }

    // --- statistics -------------------------------------------------------

    /// Register a counter owned by this component.
    pub fn stat_counter(&mut self, name: &str) -> StatId {
        self.stats.counter(self.name, name)
    }
    /// Register a scalar accumulator owned by this component.
    pub fn stat_accumulator(&mut self, name: &str) -> StatId {
        self.stats.accumulator(self.name, name)
    }
    /// Register a log2 histogram owned by this component.
    pub fn stat_histogram(&mut self, name: &str) -> StatId {
        self.stats.histogram(self.name, name)
    }
    /// Increment a counter.
    #[inline]
    pub fn add_stat(&mut self, id: StatId, n: u64) {
        self.stats.add(id, n);
    }
    /// Record an accumulator sample.
    #[inline]
    pub fn record_stat(&mut self, id: StatId, v: f64) {
        self.stats.record(id, v);
    }
    /// Record a histogram sample.
    #[inline]
    pub fn sample_stat(&mut self, id: StatId, v: u64) {
        self.stats.sample(id, v);
    }
}
