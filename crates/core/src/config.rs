//! JSON system configuration.
//!
//! SST instantiates simulations from machine-parsable configuration files
//! naming registered component types. This module provides the equivalent:
//! a [`ComponentRegistry`] of named factories and a [`SystemConfig`] schema
//! that wires instances together by component/port *names*, resolved through
//! each component's [`Component::ports`](crate::component::Component::ports)
//! table.

use crate::builder::SystemBuilder;
use crate::component::Component;
use crate::event::PortId;
use crate::params::Params;
use crate::time::{Frequency, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Factory signature: build a component from parameters.
pub type Factory = Box<dyn Fn(&Params) -> Result<Box<dyn Component>, ConfigError> + Send + Sync>;

/// Errors raised while interpreting a configuration.
#[derive(Debug)]
pub enum ConfigError {
    UnknownType(String),
    UnknownComponent(String),
    UnknownPort { component: String, port: String },
    BadParam(crate::params::ParamError),
    BadFormat(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownType(t) => write!(f, "unknown component type `{t}`"),
            ConfigError::UnknownComponent(c) => write!(f, "unknown component `{c}`"),
            ConfigError::UnknownPort { component, port } => {
                write!(f, "component `{component}` has no port named `{port}`")
            }
            ConfigError::BadParam(e) => write!(f, "{e}"),
            ConfigError::BadFormat(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<crate::params::ParamError> for ConfigError {
    fn from(e: crate::params::ParamError) -> Self {
        ConfigError::BadParam(e)
    }
}

/// A registry of component factories keyed by type name.
#[derive(Default)]
pub struct ComponentRegistry {
    factories: HashMap<String, (Factory, String)>,
}

impl ComponentRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a component type with a one-line description.
    pub fn register<F>(&mut self, type_name: &str, description: &str, factory: F)
    where
        F: Fn(&Params) -> Result<Box<dyn Component>, ConfigError> + Send + Sync + 'static,
    {
        self.factories.insert(
            type_name.to_string(),
            (Box::new(factory), description.to_string()),
        );
    }

    pub fn create(
        &self,
        type_name: &str,
        params: &Params,
    ) -> Result<Box<dyn Component>, ConfigError> {
        match self.factories.get(type_name) {
            Some((f, _)) => f(params),
            None => Err(ConfigError::UnknownType(type_name.to_string())),
        }
    }

    pub fn contains(&self, type_name: &str) -> bool {
        self.factories.contains_key(type_name)
    }

    /// All registered `(type, description)` pairs, sorted by type name.
    pub fn list(&self) -> Vec<(String, String)> {
        let mut v: Vec<_> = self
            .factories
            .iter()
            .map(|(k, (_, d))| (k.clone(), d.clone()))
            .collect();
        v.sort();
        v
    }
}

/// One component instance in a config file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentConfig {
    pub name: String,
    #[serde(rename = "type")]
    pub type_name: String,
    /// Optional parallel rank pin.
    #[serde(default)]
    pub rank: Option<u32>,
    #[serde(default)]
    pub params: serde_json::Value,
}

/// One link: endpoints as `"component.port"` strings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    pub from: String,
    pub to: String,
    pub latency_ns: f64,
}

/// One clock registration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClockConfig {
    pub component: String,
    pub ghz: f64,
}

/// A whole simulated system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    #[serde(default)]
    pub seed: Option<u64>,
    pub components: Vec<ComponentConfig>,
    #[serde(default)]
    pub links: Vec<LinkConfig>,
    #[serde(default)]
    pub clocks: Vec<ClockConfig>,
}

impl SystemConfig {
    pub fn from_json(text: &str) -> Result<SystemConfig, ConfigError> {
        serde_json::from_str(text).map_err(|e| ConfigError::BadFormat(e.to_string()))
    }

    /// Instantiate every component and wire the links/clocks, producing a
    /// ready-to-run [`SystemBuilder`].
    pub fn build(&self, registry: &ComponentRegistry) -> Result<SystemBuilder, ConfigError> {
        let mut b = SystemBuilder::new();
        if let Some(seed) = self.seed {
            b.seed(seed);
        }
        let mut ids = HashMap::new();
        let mut port_tables: HashMap<String, &'static [&'static str]> = HashMap::new();
        for cc in &self.components {
            let params = Params::from_json(&cc.params);
            let comp = registry.create(&cc.type_name, &params)?;
            port_tables.insert(cc.name.clone(), comp.ports());
            let id = match cc.rank {
                Some(r) => b.add_on_rank(cc.name.clone(), BoxedComponent(comp), r),
                None => b.add(cc.name.clone(), BoxedComponent(comp)),
            };
            ids.insert(cc.name.clone(), id);
        }
        for lc in &self.links {
            let a = resolve_endpoint(&lc.from, &ids, &port_tables)?;
            let bb = resolve_endpoint(&lc.to, &ids, &port_tables)?;
            b.link(a, bb, SimTime::ns_f64(lc.latency_ns));
        }
        for clk in &self.clocks {
            let id = *ids
                .get(&clk.component)
                .ok_or_else(|| ConfigError::UnknownComponent(clk.component.clone()))?;
            b.clock(id, Frequency::ghz(clk.ghz));
        }
        Ok(b)
    }
}

/// Wrapper so a `Box<dyn Component>` can be added to a builder that expects
/// `impl Component` by value.
struct BoxedComponent(Box<dyn Component>);
impl Component for BoxedComponent {
    fn setup(&mut self, ctx: &mut crate::component::SimCtx<'_>) {
        self.0.setup(ctx)
    }
    fn on_event(
        &mut self,
        port: PortId,
        payload: crate::event::PayloadSlot,
        ctx: &mut crate::component::SimCtx<'_>,
    ) {
        self.0.on_event(port, payload, ctx)
    }
    fn on_clock(
        &mut self,
        clock: crate::event::ClockId,
        cycle: u64,
        ctx: &mut crate::component::SimCtx<'_>,
    ) -> crate::component::ClockAction {
        self.0.on_clock(clock, cycle, ctx)
    }
    fn finish(&mut self, ctx: &mut crate::component::SimCtx<'_>) {
        self.0.finish(ctx)
    }
    fn ports(&self) -> &'static [&'static str] {
        self.0.ports()
    }
    fn save_state(&self) -> serde_json::Value {
        self.0.save_state()
    }
    fn load_state(&mut self, state: &serde_json::Value) {
        self.0.load_state(state)
    }
}

fn resolve_endpoint(
    spec: &str,
    ids: &HashMap<String, crate::event::ComponentId>,
    port_tables: &HashMap<String, &'static [&'static str]>,
) -> Result<(crate::event::ComponentId, PortId), ConfigError> {
    let (comp, port) = spec.rsplit_once('.').ok_or_else(|| {
        ConfigError::BadFormat(format!("endpoint `{spec}` is not `component.port`"))
    })?;
    let id = *ids
        .get(comp)
        .ok_or_else(|| ConfigError::UnknownComponent(comp.to_string()))?;
    let table = port_tables.get(comp).copied().unwrap_or(&[]);
    let pidx = table
        .iter()
        .position(|p| *p == port)
        .ok_or_else(|| ConfigError::UnknownPort {
            component: comp.to_string(),
            port: port.to_string(),
        })?;
    Ok((id, PortId(pidx as u16)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::SimCtx;
    use crate::engine::{Engine, RunLimit};
    use crate::event::{downcast, PayloadSlot};
    use crate::stats::StatId;

    #[derive(Debug)]
    struct Msg(u64);

    struct Echo {
        copies: u64,
        stat: Option<StatId>,
        initiate: bool,
    }
    impl Component for Echo {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.stat = Some(ctx.stat_counter("echoes"));
            if self.initiate {
                ctx.send(PortId(0), Msg(0));
            }
        }
        fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            let m = downcast::<Msg>(payload);
            ctx.add_stat(self.stat.unwrap(), 1);
            if m.0 + 1 < self.copies {
                ctx.send(PortId(0), Msg(m.0 + 1));
            }
        }
        fn ports(&self) -> &'static [&'static str] {
            &["io"]
        }
    }

    fn registry() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        r.register("echo", "bounces messages", |p| {
            Ok(Box::new(Echo {
                copies: p.u64_or("copies", 4),
                stat: None,
                initiate: p.bool_or("initiate", false),
            }))
        });
        r
    }

    const CONFIG: &str = r#"{
        "seed": 7,
        "components": [
            {"name": "left",  "type": "echo", "params": {"copies": 6, "initiate": true}},
            {"name": "right", "type": "echo", "params": {"copies": 6}}
        ],
        "links": [{"from": "left.io", "to": "right.io", "latency_ns": 2.5}]
    }"#;

    #[test]
    fn config_roundtrip_builds_and_runs() {
        let cfg = SystemConfig::from_json(CONFIG).unwrap();
        let b = cfg.build(&registry()).unwrap();
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert_eq!(report.events, 6);
        assert_eq!(report.stats.counter("right", "echoes"), 3);
        assert_eq!(report.stats.counter("left", "echoes"), 3);
        assert_eq!(report.end_time, SimTime::ps(6 * 2_500));
    }

    #[test]
    fn unknown_type_is_reported() {
        let cfg = SystemConfig::from_json(
            r#"{"components": [{"name": "x", "type": "nope", "params": {}}]}"#,
        )
        .unwrap();
        let Err(err) = cfg.build(&registry()) else {
            panic!("expected error")
        };
        assert!(matches!(err, ConfigError::UnknownType(t) if t == "nope"));
    }

    #[test]
    fn unknown_port_is_reported() {
        let cfg = SystemConfig::from_json(
            r#"{
            "components": [
                {"name": "a", "type": "echo", "params": {}},
                {"name": "b", "type": "echo", "params": {}}
            ],
            "links": [{"from": "a.bogus", "to": "b.io", "latency_ns": 1}]
        }"#,
        )
        .unwrap();
        let Err(err) = cfg.build(&registry()) else {
            panic!("expected error")
        };
        assert!(matches!(err, ConfigError::UnknownPort { port, .. } if port == "bogus"));
    }

    #[test]
    fn bad_endpoint_format() {
        let cfg = SystemConfig::from_json(
            r#"{
            "components": [{"name": "a", "type": "echo", "params": {}}],
            "links": [{"from": "a", "to": "a.io", "latency_ns": 1}]
        }"#,
        )
        .unwrap();
        let Err(err) = cfg.build(&registry()) else {
            panic!("expected error")
        };
        assert!(matches!(err, ConfigError::BadFormat(_)));
    }

    #[test]
    fn registry_lists_types() {
        let r = registry();
        let l = r.list();
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].0, "echo");
        assert!(r.contains("echo"));
        assert!(!r.contains("missing"));
    }
}
