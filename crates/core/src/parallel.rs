//! Conservative parallel discrete-event engine.
//!
//! The component graph is partitioned across `n` ranks (worker threads —
//! standing in for the MPI ranks of the original SST; see DESIGN.md). Because
//! every link has non-zero latency, an event sent at time `t` over a
//! cross-rank link cannot arrive before `t + L`, where `L` is the minimum
//! cross-rank link latency (the *lookahead*). Each epoch therefore processes
//! the window `[T, T + L)` where `T` is the global minimum pending event
//! time, exchanges cross-rank events at a barrier, and repeats. No rank can
//! ever receive an event in its past, so no rollback is needed.
//!
//! Determinism: event ordering uses the same `(time, class, tie)` total order
//! as the serial engine, and tie-breakers are derived from sender state only,
//! so a parallel run produces *bit-identical* statistics to the serial run of
//! the same system. Integration tests assert this.

use crate::builder::SystemBuilder;
use crate::component::EventSink;
use crate::engine::{Kernel, RunLimit, SimReport};
use crate::event::ScheduledEvent;
use crate::queue::EventQueue;
use crate::stats::StatsRegistry;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Routes pushed events: local ones into a staging buffer (drained into the
/// rank's queue after each handler, since the queue is being popped at the
/// same time), remote ones into per-destination buffers flushed at the next
/// barrier.
struct RankSink<'a> {
    my_rank: u32,
    local: &'a mut Vec<ScheduledEvent>,
    outbound: &'a mut [Vec<ScheduledEvent>],
}

impl EventSink for RankSink<'_> {
    #[inline]
    fn push(&mut self, ev: ScheduledEvent, target_rank: u32) {
        // `u32::MAX` marks engine-internal events (clock ticks), which are
        // always local.
        if target_rank == self.my_rank || target_rank == u32::MAX {
            self.local.push(ev);
        } else {
            self.outbound[target_rank as usize].push(ev);
        }
    }
}

/// The parallel engine: one [`Kernel`] per rank plus shared synchronization
/// state.
pub struct ParallelEngine {
    kernels: Vec<Kernel>,
    lookahead: SimTime,
    n_ranks: u32,
}

impl ParallelEngine {
    /// Partition the system over `n_ranks` ranks. Panics if `n_ranks == 0`.
    /// Systems with no cross-rank links use an unbounded lookahead (the ranks
    /// are independent).
    pub fn new(builder: SystemBuilder, n_ranks: u32) -> ParallelEngine {
        assert!(n_ranks > 0, "need at least one rank");
        let ranks = builder.resolve_ranks(n_ranks);
        let lookahead = builder.lookahead(&ranks).unwrap_or(SimTime::MAX);
        // Kernel::from_builder consumes the builder, so clone-free
        // construction needs one pass per rank over a shared spec. Instead we
        // split the builder once: move each component into its rank's kernel.
        let kernels = split_builder(builder, &ranks, n_ranks);
        ParallelEngine {
            kernels,
            lookahead,
            n_ranks,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The conservative lookahead window.
    pub fn lookahead(&self) -> SimTime {
        self.lookahead
    }

    /// Run the simulation to `limit` and report. Statistics from all ranks
    /// are merged (rank order) into one snapshot.
    pub fn run(self, limit: RunLimit) -> SimReport {
        let t0 = std::time::Instant::now();
        let n = self.n_ranks as usize;
        let bound = limit.bound();
        let lookahead = self.lookahead;

        let barrier = Barrier::new(n);
        let mailboxes: Vec<Mutex<Vec<ScheduledEvent>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let next_times: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let epochs = AtomicU64::new(0);

        let mut results: Vec<Option<(Kernel, u64)>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, kernel) in self.kernels.into_iter().enumerate() {
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                let next_times = &next_times;
                let epochs = &epochs;
                handles.push(scope.spawn(move || {
                    run_rank(
                        kernel, rank as u32, n, bound, lookahead, barrier, mailboxes, next_times,
                        epochs,
                    )
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });

        let mut stats = StatsRegistry::new();
        let mut events = 0u64;
        let mut clock_ticks = 0u64;
        let mut end_time = SimTime::ZERO;
        let mut local_epochs = 0u64;
        for r in results.into_iter().flatten() {
            let (kernel, eps) = r;
            events += kernel.events;
            clock_ticks += kernel.clock_ticks;
            end_time = end_time.max(kernel.now);
            stats.absorb(kernel.stats);
            local_epochs = local_epochs.max(eps);
        }
        if let RunLimit::Until(t) = limit {
            end_time = end_time.max(t);
        }
        SimReport {
            end_time,
            events,
            clock_ticks,
            wall_seconds: t0.elapsed().as_secs_f64(),
            ranks: self.n_ranks,
            epochs: local_epochs,
            stats: stats.snapshot(),
        }
    }
}

/// Move each component of `builder` into the kernel of its rank.
fn split_builder(builder: SystemBuilder, ranks: &[u32], n_ranks: u32) -> Vec<Kernel> {
    // Rebuild per-rank builders is wasteful; instead construct one kernel per
    // rank directly from shared link/clock tables and move the boxed
    // components to their owners.
    use crate::builder::{ClockSpec, CompSpec, LinkSpec};
    let SystemBuilder {
        comps,
        links,
        clocks,
        seed,
    } = builder;

    let mut per_rank_specs: Vec<Vec<(usize, CompSpec)>> = (0..n_ranks).map(|_| Vec::new()).collect();
    for (i, spec) in comps.into_iter().enumerate() {
        per_rank_specs[ranks[i] as usize].push((i, spec));
    }

    let links: Vec<LinkSpec> = links;
    let clocks: Vec<ClockSpec> = clocks;
    let total = ranks.len();

    per_rank_specs
        .into_iter()
        .enumerate()
        .map(|(rank, specs)| {
            // Reassemble a builder view holding only this rank's components
            // but the full id space, then reuse Kernel::from_builder.
            let mut b = SystemBuilder::new();
            b.seed(seed);
            // Fill with placeholders to preserve ids; real components where
            // owned. Kernel::from_builder skips non-local ids entirely, so
            // the placeholder is never touched.
            let mut slot_specs: Vec<Option<CompSpec>> = (0..total).map(|_| None).collect();
            for (i, spec) in specs {
                slot_specs[i] = Some(spec);
            }
            b.comps = slot_specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    s.unwrap_or(CompSpec {
                        name: format!("__remote{i}"),
                        comp: Box::new(RemotePlaceholder),
                        rank: ranks[i],
                    })
                })
                .collect();
            b.links = links.clone();
            b.clocks = clocks.clone();
            Kernel::from_builder(b, ranks, rank as u32)
        })
        .collect()
}

/// Stand-in for components owned by other ranks; never invoked.
struct RemotePlaceholder;
impl crate::component::Component for RemotePlaceholder {
    fn on_event(
        &mut self,
        _port: crate::event::PortId,
        _payload: Box<dyn crate::event::Payload>,
        _ctx: &mut crate::component::SimCtx<'_>,
    ) {
        unreachable!("remote placeholder received an event");
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    mut kernel: Kernel,
    my_rank: u32,
    n: usize,
    bound: SimTime,
    lookahead: SimTime,
    barrier: &Barrier,
    mailboxes: &[Mutex<Vec<ScheduledEvent>>],
    next_times: &[AtomicU64],
    epochs: &AtomicU64,
) -> (Kernel, u64) {
    let mut queue = EventQueue::new();
    let mut staging: Vec<ScheduledEvent> = Vec::new();
    let mut outbound: Vec<Vec<ScheduledEvent>> = (0..n).map(|_| Vec::new()).collect();
    let mut my_epochs = 0u64;

    // Time-zero setup: run setup handlers and start clocks, then publish any
    // cross-rank sends before the first window.
    {
        let mut sink = RankSink {
            my_rank,
            local: &mut staging,
            outbound: &mut outbound,
        };
        kernel.setup_all(&mut sink);
        kernel.start_clocks(&mut sink);
    }
    for ev in staging.drain(..) {
        queue.push(ev);
    }
    flush_outbound(&mut outbound, mailboxes);
    barrier.wait();

    loop {
        // 1. Drain events other ranks deposited for us.
        {
            let mut mb = mailboxes[my_rank as usize].lock();
            for ev in mb.drain(..) {
                queue.push(ev);
            }
        }

        // 2. Publish my earliest pending time; agree on the global minimum.
        let my_next = queue.next_time().map_or(u64::MAX, |t| t.as_ps());
        next_times[my_rank as usize].store(my_next, Ordering::Relaxed);
        barrier.wait();
        let global_min = next_times
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX);

        // 3. Terminate when idle everywhere or past the bound. Every rank
        //    computes the same value, so all exit together.
        if global_min == u64::MAX || SimTime::ps(global_min) > bound {
            barrier.wait(); // release ranks still inside step 2's read phase
            break;
        }

        // 4. Process the conservative window [global_min, global_min + L).
        //    Events at exactly `bound` are included (RunLimit::Until is
        //    inclusive, matching the serial engine).
        let window_end = SimTime::ps(global_min.saturating_add(lookahead.as_ps()));
        let hard_end = SimTime::ps(bound.as_ps().saturating_add(1));
        let end = window_end.min(hard_end);
        while let Some(ev) = queue.pop_before(end) {
            let mut sink = RankSink {
                my_rank,
                local: &mut staging,
                outbound: &mut outbound,
            };
            kernel.deliver(ev, &mut sink);
            for ev in staging.drain(..) {
                queue.push(ev);
            }
        }

        // 5. Publish cross-rank events; barrier ends the epoch (and protects
        //    the next_times array for the next epoch's writes).
        flush_outbound(&mut outbound, mailboxes);
        my_epochs += 1;
        epochs.fetch_max(my_epochs, Ordering::Relaxed);
        barrier.wait();
    }

    // Finalize. `finish` must not send events; anything pushed here is
    // simply dropped with the staging buffer.
    {
        let mut sink = RankSink {
            my_rank,
            local: &mut staging,
            outbound: &mut outbound,
        };
        kernel.finish_all(&mut sink);
    }
    if bound != SimTime::MAX {
        kernel.now = kernel.now.max(bound);
    }
    (kernel, my_epochs)
}

fn flush_outbound(outbound: &mut [Vec<ScheduledEvent>], mailboxes: &[Mutex<Vec<ScheduledEvent>>]) {
    for (rank, buf) in outbound.iter_mut().enumerate() {
        if !buf.is_empty() {
            mailboxes[rank].lock().append(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, SimCtx};
    use crate::event::{downcast, Payload, PortId};
    use crate::stats::StatId;

    #[derive(Debug)]
    struct Token(u64);

    /// Forwards a token around a ring `laps` times, counting visits.
    struct RingNode {
        laps: u64,
        start: bool,
        visits: Option<StatId>,
    }
    impl RingNode {
        const IN: PortId = PortId(0);
        const OUT: PortId = PortId(1);
    }
    impl Component for RingNode {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.visits = Some(ctx.stat_counter("visits"));
            if self.start {
                ctx.send(Self::OUT, Box::new(Token(0)));
            }
        }
        fn on_event(&mut self, port: PortId, payload: Box<dyn Payload>, ctx: &mut SimCtx<'_>) {
            assert_eq!(port, Self::IN);
            let tok = downcast::<Token>(payload);
            ctx.add_stat(self.visits.unwrap(), 1);
            if tok.0 < self.laps {
                ctx.send(Self::OUT, Box::new(Token(tok.0 + if self.start { 1 } else { 0 })));
            }
        }
    }

    fn build_ring(nodes: u32, laps: u64) -> SystemBuilder {
        let mut b = SystemBuilder::new();
        let ids: Vec<_> = (0..nodes)
            .map(|i| {
                b.add(
                    format!("node{i}"),
                    RingNode {
                        laps,
                        start: i == 0,
                        visits: None,
                    },
                )
            })
            .collect();
        for i in 0..nodes as usize {
            let next = (i + 1) % nodes as usize;
            b.link(
                (ids[i], RingNode::OUT),
                (ids[next], RingNode::IN),
                SimTime::ns(7),
            );
        }
        b
    }

    #[test]
    fn ring_parallel_matches_serial() {
        let serial = crate::engine::Engine::new(build_ring(8, 10)).run(RunLimit::Exhaust);
        for ranks in [1u32, 2, 3, 4] {
            let par = ParallelEngine::new(build_ring(8, 10), ranks).run(RunLimit::Exhaust);
            assert_eq!(par.events, serial.events, "ranks={ranks}");
            assert_eq!(par.end_time, serial.end_time, "ranks={ranks}");
            for i in 0..8 {
                let name = format!("node{i}");
                assert_eq!(
                    par.stats.counter(&name, "visits"),
                    serial.stats.counter(&name, "visits"),
                    "ranks={ranks} node={i}"
                );
            }
        }
    }

    #[test]
    fn run_until_parallel_matches_serial() {
        let limit = RunLimit::Until(SimTime::ns(200));
        let serial = crate::engine::Engine::new(build_ring(6, 1_000_000)).run(limit);
        let par = ParallelEngine::new(build_ring(6, 1_000_000), 3).run(limit);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
    }

    #[test]
    fn independent_ranks_no_cross_links() {
        // Two disjoint rings: lookahead is unbounded; both must still finish.
        let mut b = SystemBuilder::new();
        for r in 0..2 {
            let ids: Vec<_> = (0..4)
                .map(|i| {
                    b.add_on_rank(
                        format!("r{r}n{i}"),
                        RingNode {
                            laps: 5,
                            start: i == 0,
                            visits: None,
                        },
                        r,
                    )
                })
                .collect();
            for i in 0..4usize {
                b.link(
                    (ids[i], RingNode::OUT),
                    (ids[(i + 1) % 4], RingNode::IN),
                    SimTime::ns(3),
                );
            }
        }
        let report = ParallelEngine::new(b, 2).run(RunLimit::Exhaust);
        assert_eq!(report.stats.sum_counters("visits"), 2 * (5 * 4 + 1));
    }

    #[test]
    fn single_rank_parallel_equals_serial() {
        let serial = crate::engine::Engine::new(build_ring(4, 3)).run(RunLimit::Exhaust);
        let par = ParallelEngine::new(build_ring(4, 3), 1).run(RunLimit::Exhaust);
        assert_eq!(par.events, serial.events);
        assert_eq!(par.end_time, serial.end_time);
    }
}
