//! Events and identifiers.
//!
//! Everything that flows between components is an [`Event`]: a type-erased
//! payload plus routing/ordering metadata managed by the engine. Components
//! downcast payloads on receipt, which keeps the engine fully generic over
//! component types (the SST "port/event" model).
//!
//! Payloads travel in a [`PayloadSlot`]: small payloads (the common case —
//! every `cpu`/`mem`/`net` message type fits) are stored *inline* in the
//! [`ScheduledEvent`], so the steady-state send/deliver path does no heap
//! allocation at all. Oversized or over-aligned payloads fall back to a box.

use crate::time::SimTime;
use std::any::{Any, TypeId};
use std::fmt;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Identifies a component instance within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a port on a component. Port numbering is a per-component-type
/// convention (components expose `pub const` port ids and a name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// The pseudo-port used for self-scheduled events ([`SimCtx::schedule_self`]).
pub const SELF_PORT: PortId = PortId(u16::MAX);

/// Identifies a registered clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub u32);

/// A type-erased event payload.
///
/// Blanket-implemented for every `'static + Send + Debug` type, so any plain
/// struct can be sent over a link without ceremony.
pub trait Payload: Any + Send + fmt::Debug {
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Send + fmt::Debug> Payload for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Payloads at most this many bytes (and at most word-aligned) are stored
/// inline in the event instead of boxed. 24 bytes = three machine words,
/// sized to the largest message type in the standard component crates
/// (`MemReq` {u64,u64,bool} and `Packet` {u32,u32,u64,SimTime} are both
/// exactly 24) while keeping `ScheduledEvent` within one cache line.
pub const INLINE_PAYLOAD_BYTES: usize = 24;

/// Manual vtable for inline payloads: everything the engine needs to drop,
/// debug-print, and downcast a payload without a heap-allocated `dyn` box.
/// One `'static` instance exists per payload type (const-promoted).
struct InlineVtable {
    type_id: fn() -> TypeId,
    debug: unsafe fn(*const u8, &mut fmt::Formatter<'_>) -> fmt::Result,
    drop_in_place: unsafe fn(*mut u8),
}

/// Word-aligned inline storage for [`INLINE_PAYLOAD_BYTES`] bytes.
type InlineData = MaybeUninit<[u64; INLINE_PAYLOAD_BYTES / 8]>;

enum SlotRepr {
    /// A payload of at most [`INLINE_PAYLOAD_BYTES`] bytes, stored in place.
    Inline {
        data: InlineData,
        vt: &'static InlineVtable,
    },
    /// The fallback for oversized (or over-aligned) payloads.
    Boxed(Box<dyn Payload>),
}

/// An owned, type-erased payload that avoids heap allocation for small
/// types. Built by [`SimCtx::send`](crate::component::SimCtx::send) and
/// friends; consumed by [`downcast`] inside
/// [`Component::on_event`](crate::component::Component::on_event).
pub struct PayloadSlot(SlotRepr);

impl PayloadSlot {
    /// Wrap `value`, storing it inline when it fits.
    #[inline]
    pub fn new<T: Payload>(value: T) -> PayloadSlot {
        if size_of::<T>() <= INLINE_PAYLOAD_BYTES && align_of::<T>() <= align_of::<u64>() {
            unsafe fn debug_raw<T: fmt::Debug>(
                p: *const u8,
                f: &mut fmt::Formatter<'_>,
            ) -> fmt::Result {
                unsafe { fmt::Debug::fmt(&*(p as *const T), f) }
            }
            unsafe fn drop_raw<T>(p: *mut u8) {
                unsafe { std::ptr::drop_in_place(p as *mut T) }
            }
            struct Vt<T>(std::marker::PhantomData<T>);
            impl<T: Payload> Vt<T> {
                const VTABLE: InlineVtable = InlineVtable {
                    type_id: TypeId::of::<T>,
                    debug: debug_raw::<T>,
                    drop_in_place: drop_raw::<T>,
                };
            }
            let mut data: InlineData = MaybeUninit::uninit();
            // SAFETY: size and alignment of T were checked above; the slot
            // owns the value from here (dropped in Drop or moved out in
            // try_downcast, exactly once).
            unsafe { (data.as_mut_ptr() as *mut T).write(value) };
            PayloadSlot(SlotRepr::Inline {
                data,
                vt: &Vt::<T>::VTABLE,
            })
        } else {
            PayloadSlot(SlotRepr::Boxed(Box::new(value)))
        }
    }

    /// Is the payload stored inline (no heap allocation)?
    pub fn is_inline(&self) -> bool {
        matches!(self.0, SlotRepr::Inline { .. })
    }

    /// The `TypeId` of the payload the slot currently holds, regardless of
    /// representation. Lets the snapshot layer look up the registered codec
    /// for an in-queue payload without guessing at its concrete type.
    pub fn payload_type_id(&self) -> TypeId {
        match &self.0 {
            SlotRepr::Inline { vt, .. } => (vt.type_id)(),
            SlotRepr::Boxed(b) => (**b).as_any().type_id(),
        }
    }

    /// Take the payload out as a `T`, or give the slot back on a type
    /// mismatch (so the caller can report what it actually held).
    pub fn try_downcast<T: Payload>(self) -> Result<T, PayloadSlot> {
        match &self.0 {
            SlotRepr::Inline { vt, .. } if (vt.type_id)() == TypeId::of::<T>() => {
                let this = ManuallyDrop::new(self);
                let SlotRepr::Inline { data, .. } = &this.0 else {
                    unreachable!()
                };
                // SAFETY: type checked above; ManuallyDrop suppresses the
                // slot's Drop, so ownership transfers to the returned value.
                Ok(unsafe { (data.as_ptr() as *const T).read() })
            }
            SlotRepr::Boxed(b) if (**b).as_any().is::<T>() => {
                let this = ManuallyDrop::new(self);
                let SlotRepr::Boxed(b) = &this.0 else {
                    unreachable!()
                };
                // SAFETY: the box is read out exactly once; the slot's Drop
                // is suppressed by ManuallyDrop.
                let b = unsafe { std::ptr::read(b) };
                match b.into_any().downcast::<T>() {
                    Ok(v) => Ok(*v),
                    Err(_) => unreachable!("type checked above"),
                }
            }
            _ => Err(self),
        }
    }
}

impl Drop for PayloadSlot {
    fn drop(&mut self) {
        if let SlotRepr::Inline { data, vt } = &mut self.0 {
            // SAFETY: an inline slot that reaches Drop still owns its value
            // (try_downcast wraps in ManuallyDrop before moving out).
            unsafe { (vt.drop_in_place)(data.as_mut_ptr() as *mut u8) };
        }
    }
}

impl fmt::Debug for PayloadSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            SlotRepr::Inline { data, vt } => {
                // SAFETY: the slot owns a live value of the vtable's type.
                unsafe { (vt.debug)(data.as_ptr() as *const u8, f) }
            }
            SlotRepr::Boxed(b) => fmt::Debug::fmt(b, f),
        }
    }
}

/// Downcast a payload slot to a concrete type, panicking with a helpful
/// message on mismatch. Components use this in `on_event`. The debug
/// rendering of the payload is built only on the mismatch branch, so the
/// (overwhelmingly common) success path does zero formatting work.
pub fn downcast<T: Payload>(payload: PayloadSlot) -> T {
    payload.try_downcast::<T>().unwrap_or_else(|payload| {
        panic!(
            "event payload type mismatch: expected {}, got {:?}",
            std::any::type_name::<T>(),
            payload
        )
    })
}

/// Deterministic tie-breaker for simultaneous events.
///
/// Two events with equal delivery time and priority are ordered by
/// `(src_component, per-component send sequence)`. Both fields are functions
/// of the *sender's* deterministic execution, so serial and parallel engines
/// produce identical delivery orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TieBreak {
    pub src: ComponentId,
    pub seq: u64,
}

/// Engine-internal ordering priority. Lower runs first at equal times.
/// Clocks fire before events at the same instant (the SST convention), so a
/// component's clock handler observes state *before* same-cycle deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    Clock = 0,
    Message = 1,
}

/// The total-order key of a scheduled event. Payloads never participate in
/// ordering.
pub type EventKey = (SimTime, EventClass, TieBreak);

/// A scheduled occurrence: either a clock tick or a message delivery.
pub struct ScheduledEvent {
    pub time: SimTime,
    pub class: EventClass,
    pub tie: TieBreak,
    pub target: ComponentId,
    pub kind: EventKind,
}

pub enum EventKind {
    /// Deliver `payload` to `port` of the target component.
    Message { port: PortId, payload: PayloadSlot },
    /// Fire the target component's clock handler.
    ClockTick { clock: ClockId, cycle: u64 },
}

impl ScheduledEvent {
    /// The total-order key. Payloads never participate in ordering.
    #[inline]
    pub fn key(&self) -> EventKey {
        (self.time, self.class, self.tie)
    }
}

impl fmt::Debug for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Message { port, payload } => write!(
                f,
                "Event@{} -> {}:{:?} {:?}",
                self.time, self.target, port, payload
            ),
            EventKind::ClockTick { clock, cycle } => write!(
                f,
                "Clock@{} -> {} clk{:?} cycle {}",
                self.time, self.target, clock, cycle
            ),
        }
    }
}

/// A free list of event buffers.
///
/// Hot paths that batch events — same-time delivery runs in the engines,
/// cross-rank exchange in the parallel engine — would otherwise allocate a
/// fresh `Vec` per batch. Buffers taken from the pool keep the capacity they
/// grew on earlier rounds, so steady-state batching does no allocation at
/// all.
#[derive(Default)]
pub struct EventBufPool {
    free: Vec<Vec<ScheduledEvent>>,
}

impl EventBufPool {
    /// Retained buffers are capped in number so a one-off burst doesn't pin
    /// memory.
    const MAX_FREE: usize = 64;
    /// ... and in per-buffer size: a buffer whose capacity exceeds this many
    /// bytes is dropped instead of retained, so a single giant batch can't
    /// pin its high-water allocation for the rest of the run.
    const MAX_RETAINED_BYTES: usize = 64 * 1024;

    pub fn new() -> Self {
        Self::default()
    }

    /// Take an empty buffer (reusing a returned one when available).
    pub fn get(&mut self) -> Vec<ScheduledEvent> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are dropped.
    pub fn put(&mut self, mut buf: Vec<ScheduledEvent>) {
        buf.clear();
        let bytes = buf.capacity().saturating_mul(size_of::<ScheduledEvent>());
        if self.free.len() < Self::MAX_FREE
            && buf.capacity() > 0
            && bytes <= Self::MAX_RETAINED_BYTES
        {
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn downcast_roundtrip() {
        let b = PayloadSlot::new(Ping(7));
        assert!(b.is_inline());
        let p = downcast::<Ping>(b);
        assert_eq!(p, Ping(7));
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn downcast_mismatch_panics() {
        let b = PayloadSlot::new(Ping(7));
        let _ = downcast::<String>(b);
    }

    #[test]
    fn mismatch_message_names_both_types() {
        let r = std::panic::catch_unwind(|| downcast::<String>(PayloadSlot::new(Ping(9))));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("expected alloc::string::String"), "{msg}");
        assert!(msg.contains("Ping(9)"), "{msg}");
    }

    #[test]
    fn oversized_payload_falls_back_to_box() {
        #[derive(Debug, PartialEq)]
        struct Big([u64; 5]);
        let b = PayloadSlot::new(Big([1, 2, 3, 4, 5]));
        assert!(!b.is_inline());
        assert_eq!(downcast::<Big>(b), Big([1, 2, 3, 4, 5]));
        // Over-aligned payloads also box, even when they fit by size.
        #[derive(Debug, PartialEq)]
        #[repr(align(16))]
        struct Wide(u64);
        let w = PayloadSlot::new(Wide(3));
        assert!(!w.is_inline());
        assert_eq!(downcast::<Wide>(w), Wide(3));
    }

    #[test]
    fn slot_drops_payload_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        // Dropped while still in the slot.
        drop(PayloadSlot::new(Canary));
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        // Moved out by downcast: dropped once, as the concrete value.
        let c = downcast::<Canary>(PayloadSlot::new(Canary));
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
        // Failed downcast hands the payload back intact; dropping the
        // returned slot drops the value.
        let slot = PayloadSlot::new(Canary).try_downcast::<Ping>().unwrap_err();
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
        drop(slot);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn common_message_types_fit_inline() {
        // The inline threshold exists for these: if this fails, either the
        // threshold or the message type needs revisiting.
        assert!(size_of::<(u64, u64, bool)>() <= INLINE_PAYLOAD_BYTES);
        assert!(size_of::<(u32, u32, u64, u64)>() <= INLINE_PAYLOAD_BYTES);
        assert!(PayloadSlot::new(()).is_inline());
        assert!(PayloadSlot::new(0u64).is_inline());
        assert!(PayloadSlot::new([0u64; 3]).is_inline());
        assert!(!PayloadSlot::new([0u64; 4]).is_inline());
    }

    #[test]
    fn clock_orders_before_message() {
        assert!(EventClass::Clock < EventClass::Message);
    }

    #[test]
    fn buf_pool_reuses_capacity() {
        let mut pool = EventBufPool::new();
        let mut b = pool.get();
        b.reserve(128);
        let cap = b.capacity();
        b.push(ScheduledEvent {
            time: SimTime::ZERO,
            class: EventClass::Message,
            tie: TieBreak {
                src: ComponentId(0),
                seq: 0,
            },
            target: ComponentId(0),
            kind: EventKind::Message {
                port: PortId(0),
                payload: PayloadSlot::new(()),
            },
        });
        pool.put(b);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
        // Zero-capacity buffers are not worth retaining.
        pool.put(Vec::new());
        assert_eq!(pool.get().capacity(), 0);
    }

    #[test]
    fn buf_pool_drops_oversized_buffers() {
        let mut pool = EventBufPool::new();
        let over = EventBufPool::MAX_RETAINED_BYTES / size_of::<ScheduledEvent>() + 1;
        pool.put(Vec::with_capacity(over));
        assert_eq!(pool.get().capacity(), 0, "giant buffer must not be pinned");
        pool.put(Vec::with_capacity(over - 1));
        assert!(pool.get().capacity() >= over - 1, "fitting buffer reused");
    }

    #[test]
    fn tiebreak_order() {
        let a = TieBreak {
            src: ComponentId(1),
            seq: 5,
        };
        let b = TieBreak {
            src: ComponentId(1),
            seq: 6,
        };
        let c = TieBreak {
            src: ComponentId(2),
            seq: 0,
        };
        assert!(a < b && b < c);
    }
}
