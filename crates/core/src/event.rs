//! Events and identifiers.
//!
//! Everything that flows between components is an [`Event`]: a boxed,
//! type-erased payload plus routing/ordering metadata managed by the engine.
//! Components downcast payloads on receipt, which keeps the engine fully
//! generic over component types (the SST "port/event" model).

use crate::time::SimTime;
use std::any::Any;
use std::fmt;

/// Identifies a component instance within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a port on a component. Port numbering is a per-component-type
/// convention (components expose `pub const` port ids and a name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// The pseudo-port used for self-scheduled events ([`SimCtx::schedule_self`]).
pub const SELF_PORT: PortId = PortId(u16::MAX);

/// Identifies a registered clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub u32);

/// A type-erased event payload.
///
/// Blanket-implemented for every `'static + Send + Debug` type, so any plain
/// struct can be sent over a link without ceremony.
pub trait Payload: Any + Send + fmt::Debug {
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Send + fmt::Debug> Payload for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Downcast a boxed payload to a concrete type, panicking with a helpful
/// message on mismatch. Components use this in `on_event`.
pub fn downcast<T: Payload>(payload: Box<dyn Payload>) -> Box<T> {
    let dbg = format!("{:?}", payload);
    payload.into_any().downcast::<T>().unwrap_or_else(|_| {
        panic!(
            "event payload type mismatch: expected {}, got {dbg}",
            std::any::type_name::<T>()
        )
    })
}

/// Deterministic tie-breaker for simultaneous events.
///
/// Two events with equal delivery time and priority are ordered by
/// `(src_component, per-component send sequence)`. Both fields are functions
/// of the *sender's* deterministic execution, so serial and parallel engines
/// produce identical delivery orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TieBreak {
    pub src: ComponentId,
    pub seq: u64,
}

/// Engine-internal ordering priority. Lower runs first at equal times.
/// Clocks fire before events at the same instant (the SST convention), so a
/// component's clock handler observes state *before* same-cycle deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    Clock = 0,
    Message = 1,
}

/// A scheduled occurrence: either a clock tick or a message delivery.
pub struct ScheduledEvent {
    pub time: SimTime,
    pub class: EventClass,
    pub tie: TieBreak,
    pub target: ComponentId,
    pub kind: EventKind,
}

pub enum EventKind {
    /// Deliver `payload` to `port` of the target component.
    Message {
        port: PortId,
        payload: Box<dyn Payload>,
    },
    /// Fire the target component's clock handler.
    ClockTick { clock: ClockId, cycle: u64 },
}

impl ScheduledEvent {
    /// The total-order key. Payloads never participate in ordering.
    #[inline]
    pub fn key(&self) -> (SimTime, EventClass, TieBreak) {
        (self.time, self.class, self.tie)
    }
}

impl fmt::Debug for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Message { port, payload } => write!(
                f,
                "Event@{} -> {}:{:?} {:?}",
                self.time, self.target, port, payload
            ),
            EventKind::ClockTick { clock, cycle } => write!(
                f,
                "Clock@{} -> {} clk{:?} cycle {}",
                self.time, self.target, clock, cycle
            ),
        }
    }
}

/// A free list of event buffers.
///
/// Hot paths that batch events — cross-rank exchange in the parallel engine,
/// staging during delivery — would otherwise allocate a fresh `Vec` per
/// batch. Buffers taken from the pool keep the capacity they grew on earlier
/// rounds, so steady-state batching does no allocation at all.
#[derive(Default)]
pub struct EventBufPool {
    free: Vec<Vec<ScheduledEvent>>,
}

impl EventBufPool {
    /// Retained buffers are capped so a one-off burst doesn't pin memory.
    const MAX_FREE: usize = 64;

    pub fn new() -> Self {
        Self::default()
    }

    /// Take an empty buffer (reusing a returned one when available).
    pub fn get(&mut self) -> Vec<ScheduledEvent> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are dropped.
    pub fn put(&mut self, mut buf: Vec<ScheduledEvent>) {
        buf.clear();
        if self.free.len() < Self::MAX_FREE && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    #[test]
    fn downcast_roundtrip() {
        let b: Box<dyn Payload> = Box::new(Ping(7));
        let p = downcast::<Ping>(b);
        assert_eq!(*p, Ping(7));
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn downcast_mismatch_panics() {
        let b: Box<dyn Payload> = Box::new(Ping(7));
        let _ = downcast::<String>(b);
    }

    #[test]
    fn clock_orders_before_message() {
        assert!(EventClass::Clock < EventClass::Message);
    }

    #[test]
    fn buf_pool_reuses_capacity() {
        let mut pool = EventBufPool::new();
        let mut b = pool.get();
        b.reserve(128);
        let cap = b.capacity();
        b.push(ScheduledEvent {
            time: SimTime::ZERO,
            class: EventClass::Message,
            tie: TieBreak {
                src: ComponentId(0),
                seq: 0,
            },
            target: ComponentId(0),
            kind: EventKind::Message {
                port: PortId(0),
                payload: Box::new(()),
            },
        });
        pool.put(b);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap);
        // Zero-capacity buffers are not worth retaining.
        pool.put(Vec::new());
        assert_eq!(pool.get().capacity(), 0);
    }

    #[test]
    fn tiebreak_order() {
        let a = TieBreak {
            src: ComponentId(1),
            seq: 5,
        };
        let b = TieBreak {
            src: ComponentId(1),
            seq: 6,
        };
        let c = TieBreak {
            src: ComponentId(2),
            seq: 0,
        };
        assert!(a < b && b < c);
    }
}
