//! Typed component parameters.
//!
//! SST components are constructed from key/value parameter sets supplied by a
//! configuration file. [`Params`] wraps a JSON object with typed accessors,
//! defaulting, scoped prefixes (`"l1.size"` → scope `"l1"` key `"size"`),
//! and error messages that name the offending key.

use crate::fidelity::Fidelity;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by parameter lookup/conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    pub key: String,
    pub message: String,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parameter `{}`: {}", self.key, self.message)
    }
}

impl std::error::Error for ParamError {}

/// An ordered string-keyed parameter map.
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a JSON object value. Non-objects become empty params.
    pub fn from_json(v: &Value) -> Self {
        let mut p = Params::new();
        if let Value::Object(map) = v {
            for (k, v) in map {
                p.values.insert(k.clone(), v.clone());
            }
        }
        p
    }

    /// Insert/overwrite a value (builder style).
    pub fn set(mut self, key: &str, v: impl Into<Value>) -> Self {
        self.values.insert(key.to_string(), v.into());
        self
    }

    pub fn insert(&mut self, key: &str, v: impl Into<Value>) {
        self.values.insert(key.to_string(), v.into());
    }

    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(|s| s.as_str())
    }

    fn err(key: &str, message: impl Into<String>) -> ParamError {
        ParamError {
            key: key.to_string(),
            message: message.into(),
        }
    }

    /// Required u64.
    pub fn u64(&self, key: &str) -> Result<u64, ParamError> {
        match self.values.get(key) {
            Some(Value::Number(n)) => n
                .as_u64()
                .ok_or_else(|| Self::err(key, format!("expected unsigned integer, got {n}"))),
            Some(other) => Err(Self::err(key, format!("expected integer, got {other}"))),
            None => Err(Self::err(key, "missing required parameter")),
        }
    }

    /// u64 with default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        if self.contains(key) {
            self.u64(key).unwrap_or(default)
        } else {
            default
        }
    }

    /// Required f64 (accepts integers too).
    pub fn f64(&self, key: &str) -> Result<f64, ParamError> {
        match self.values.get(key) {
            Some(Value::Number(n)) => n
                .as_f64()
                .ok_or_else(|| Self::err(key, format!("expected number, got {n}"))),
            Some(other) => Err(Self::err(key, format!("expected number, got {other}"))),
            None => Err(Self::err(key, "missing required parameter")),
        }
    }

    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        if self.contains(key) {
            self.f64(key).unwrap_or(default)
        } else {
            default
        }
    }

    /// Required string.
    pub fn str(&self, key: &str) -> Result<&str, ParamError> {
        match self.values.get(key) {
            Some(Value::String(s)) => Ok(s.as_str()),
            Some(other) => Err(Self::err(key, format!("expected string, got {other}"))),
            None => Err(Self::err(key, "missing required parameter")),
        }
    }

    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.values.get(key) {
            Some(Value::String(s)) => s.as_str(),
            _ => default,
        }
    }

    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.values.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// Required fidelity (`"analytic"` / `"des"`).
    pub fn fidelity(&self, key: &str) -> Result<Fidelity, ParamError> {
        self.str(key)?
            .parse()
            .map_err(|e: crate::fidelity::ParseFidelityError| Self::err(key, e.to_string()))
    }

    /// Fidelity with default; malformed values also fall back to the default.
    pub fn fidelity_or(&self, key: &str, default: Fidelity) -> Fidelity {
        match self.values.get(key) {
            Some(Value::String(s)) => s.parse().unwrap_or(default),
            _ => default,
        }
    }

    /// Extract the sub-params under `prefix.`: keys `"l1.size"`, `"l1.assoc"`
    /// become `"size"`, `"assoc"` in the returned scope.
    pub fn scope(&self, prefix: &str) -> Params {
        let mut p = Params::new();
        let pat = format!("{prefix}.");
        for (k, v) in &self.values {
            if let Some(rest) = k.strip_prefix(&pat) {
                p.values.insert(rest.to_string(), v.clone());
            }
        }
        p
    }

    /// Merge `other` over `self` (other wins on conflicts).
    pub fn merged(mut self, other: &Params) -> Params {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), v.clone());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn typed_accessors() {
        let p = Params::new()
            .set("size", 65536u64)
            .set("ratio", 0.75)
            .set("policy", "lru")
            .set("enabled", true);
        assert_eq!(p.u64("size").unwrap(), 65536);
        assert_eq!(p.f64("ratio").unwrap(), 0.75);
        assert_eq!(p.f64("size").unwrap(), 65536.0);
        assert_eq!(p.str("policy").unwrap(), "lru");
        assert!(p.bool_or("enabled", false));
        assert!(!p.bool_or("missing", false));
    }

    #[test]
    fn defaults() {
        let p = Params::new().set("a", 1u64);
        assert_eq!(p.u64_or("a", 9), 1);
        assert_eq!(p.u64_or("b", 9), 9);
        assert_eq!(p.f64_or("b", 0.5), 0.5);
        assert_eq!(p.str_or("b", "x"), "x");
    }

    #[test]
    fn errors_name_key() {
        let p = Params::new().set("policy", "lru");
        let e = p.u64("missing").unwrap_err();
        assert_eq!(e.key, "missing");
        assert!(e.message.contains("missing"));
        let e = p.u64("policy").unwrap_err();
        assert!(e.message.contains("expected integer"));
    }

    #[test]
    fn scoping() {
        let p = Params::new()
            .set("l1.size", 32768u64)
            .set("l1.assoc", 8u64)
            .set("l2.size", 262144u64);
        let l1 = p.scope("l1");
        assert_eq!(l1.u64("size").unwrap(), 32768);
        assert_eq!(l1.u64("assoc").unwrap(), 8);
        assert!(!l1.contains("l2.size"));
        assert!(!l1.contains("size.x"));
    }

    #[test]
    fn from_json_and_merge() {
        let p = Params::from_json(&json!({"a": 1, "b": "two"}));
        assert_eq!(p.u64("a").unwrap(), 1);
        let q = Params::new().set("a", 10u64).set("c", 3u64);
        let m = p.merged(&q);
        assert_eq!(m.u64("a").unwrap(), 10);
        assert_eq!(m.str("b").unwrap(), "two");
        assert_eq!(m.u64("c").unwrap(), 3);
    }

    #[test]
    fn non_object_json_is_empty() {
        let p = Params::from_json(&json!([1, 2, 3]));
        assert!(p.is_empty());
    }

    #[test]
    fn fidelity_accessors() {
        let p = Params::new().set("fidelity", "des").set("bad", "nope");
        assert_eq!(p.fidelity("fidelity").unwrap(), Fidelity::Des);
        assert_eq!(p.fidelity_or("fidelity", Fidelity::Analytic), Fidelity::Des);
        assert_eq!(
            p.fidelity_or("missing", Fidelity::Analytic),
            Fidelity::Analytic
        );
        assert_eq!(p.fidelity_or("bad", Fidelity::Des), Fidelity::Des);
        let e = p.fidelity("bad").unwrap_err();
        assert_eq!(e.key, "bad");
        assert!(e.message.contains("unknown fidelity"));
    }
}
