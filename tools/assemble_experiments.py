#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md's measured-output appendix from the experiment
runs: takes the `sst experiment all` capture, splices in the re-run fig03
and validate tables, and embeds the result into EXPERIMENTS.md."""

import re
import sys

all_out = open("experiment_all_output.txt").read()
fig03 = open("fig03_new.txt").read().strip()
validate = open("validate_new.txt").read().strip()


def replace_section(text, header_prefix, new_block):
    # Sections start with "== <title> ==" and run until the next "== " line.
    pattern = re.compile(
        r"^== " + re.escape(header_prefix) + r".*?(?=^== |\Z)", re.S | re.M
    )
    assert pattern.search(text), f"section {header_prefix!r} not found"
    return pattern.sub(new_block.rstrip() + "\n\n", text, count=1)


all_out = replace_section(all_out, "Fig 3", fig03)
all_out = replace_section(all_out, "E12", validate)
open("experiment_all_output.txt", "w").write(all_out)

md = open("EXPERIMENTS.md").read()
marker = "# Measured output (verbatim `sst experiment all`)"
head = md.split(marker)[0]
md = head + marker + "\n\n```\n" + all_out.strip() + "\n```\n"
open("EXPERIMENTS.md", "w").write(md)
print("EXPERIMENTS.md assembled:", len(md), "bytes")
